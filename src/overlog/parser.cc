#include "src/overlog/parser.h"

#include <cctype>

#include "src/overlog/builtins.h"
#include "src/overlog/lexer.h"

namespace boom {

namespace {

bool IsVarName(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

bool IsAggName(const std::string& s) {
  return s == "count" || s == "sum" || s == "min" || s == "max" || s == "avg" ||
         s == "bottomk";
}

AggKind AggKindFromName(const std::string& s) {
  if (s == "count") return AggKind::kCount;
  if (s == "sum") return AggKind::kSum;
  if (s == "min") return AggKind::kMin;
  if (s == "max") return AggKind::kMax;
  if (s == "avg") return AggKind::kAvg;
  if (s == "bottomk") return AggKind::kBottomK;
  return AggKind::kNone;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, const ParserOptions& options)
      : tokens_(std::move(tokens)), options_(options) {
    known_tables_ = options.known_tables;
    consts_ = options.consts;
  }

  Result<Program> Run() {
    BOOM_RETURN_IF_ERROR(Expect(TokenKind::kIdent, "program"));
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected program name");
    }
    program_.name = Advance().text;
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kSemi));

    while (Peek().kind != TokenKind::kEof) {
      BOOM_RETURN_IF_ERROR(ParseDecl());
    }
    return std::move(program_);
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return InvalidArgument(msg + " (at line " + std::to_string(t.line) + ", got " +
                           t.Describe() + ")");
  }

  Status ExpectKind(TokenKind kind) {
    if (Peek().kind != kind) {
      Token want;
      want.kind = kind;
      return Error("expected token kind");
    }
    Advance();
    return Status::Ok();
  }

  Status Expect(TokenKind kind, const std::string& text) {
    if (Peek().kind != kind || Peek().text != text) {
      return Error("expected '" + text + "'");
    }
    Advance();
    return Status::Ok();
  }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == kw;
  }

  Status ParseDecl() {
    if (PeekKeyword("extern")) {
      if (Peek(1).kind == TokenKind::kIdent &&
          (Peek(1).text == "table" || Peek(1).text == "event")) {
        Advance();  // 'extern'
        return ParseTableDecl(/*is_extern=*/true);
      }
      return Error("expected 'table' or 'event' after 'extern'");
    }
    if (PeekKeyword("table") || PeekKeyword("event")) {
      return ParseTableDecl(/*is_extern=*/false);
    }
    if (PeekKeyword("timer")) {
      return ParseTimerDecl();
    }
    if (PeekKeyword("watch")) {
      return ParseWatchDecl();
    }
    if (PeekKeyword("const")) {
      return ParseConstDecl();
    }
    return ParseRuleOrFact();
  }

  Status ParseTableDecl(bool is_extern) {
    bool is_event = Peek().text == "event";
    Advance();
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected table name");
    }
    TableDef def;
    def.name = Advance().text;
    def.kind = is_event ? TableKind::kEvent : TableKind::kTable;
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
    while (Peek().kind != TokenKind::kRParen) {
      if (Peek().kind != TokenKind::kIdent) {
        return Error("expected column name");
      }
      def.columns.push_back(Advance().text);
      if (Peek().kind == TokenKind::kComma) {
        Advance();
      }
    }
    Advance();  // ')'
    if (PeekKeyword("keys")) {
      if (is_event) {
        return Error("events cannot declare keys");
      }
      Advance();
      BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
      while (Peek().kind != TokenKind::kRParen) {
        if (Peek().kind != TokenKind::kInt) {
          return Error("expected key column index");
        }
        int64_t idx = Advance().literal.as_int();
        if (idx < 0 || static_cast<size_t>(idx) >= def.columns.size()) {
          return Error("key column index out of range in table " + def.name);
        }
        def.key_columns.push_back(static_cast<size_t>(idx));
        if (Peek().kind == TokenKind::kComma) {
          Advance();
        }
      }
      Advance();  // ')'
    }
    if (PeekKeyword("ttl")) {
      if (is_event) {
        return Error("events cannot declare a ttl (they already live one timestep)");
      }
      Advance();
      BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
      if (Peek().kind != TokenKind::kInt && Peek().kind != TokenKind::kDouble) {
        return Error("expected ttl duration (ms)");
      }
      def.ttl_ms = Advance().literal.ToDouble();
      if (def.ttl_ms <= 0) {
        return Error("ttl must be positive in table " + def.name);
      }
      BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kSemi));
    if (def.columns.empty()) {
      return InvalidArgument("table " + def.name + " must have at least one column");
    }
    known_tables_.insert(def.name);
    if (is_extern) {
      program_.externs.push_back(std::move(def));
    } else {
      program_.tables.push_back(std::move(def));
    }
    return Status::Ok();
  }

  Status ParseTimerDecl() {
    Advance();  // 'timer'
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected timer name");
    }
    TimerDecl timer;
    timer.name = Advance().text;
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
    if (Peek().kind == TokenKind::kInt || Peek().kind == TokenKind::kDouble) {
      timer.period_ms = Advance().literal.ToDouble();
    } else if (Peek().kind == TokenKind::kIdent && !IsVarName(Peek().text)) {
      // A declared constant (module parameter) naming the period.
      auto it = consts_.find(Peek().text);
      if (it == consts_.end() || !it->second.is_numeric()) {
        return Error("expected timer period (ms): literal or numeric constant");
      }
      Advance();
      timer.period_ms = it->second.ToDouble();
    } else {
      return Error("expected timer period (ms)");
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kSemi));
    // A timer implicitly declares the event table <name>(Node).
    TableDef def;
    def.name = timer.name;
    def.columns = {"Node"};
    def.kind = TableKind::kEvent;
    known_tables_.insert(def.name);
    program_.tables.push_back(std::move(def));
    program_.timers.push_back(std::move(timer));
    return Status::Ok();
  }

  Status ParseWatchDecl() {
    Advance();  // 'watch'
    bool parens = Peek().kind == TokenKind::kLParen;
    if (parens) {
      Advance();
    }
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected table name to watch");
    }
    program_.watches.push_back(Advance().text);
    if (parens) {
      BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    }
    return ExpectKind(TokenKind::kSemi);
  }

  Status ParseConstDecl() {
    Advance();  // 'const'
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected constant name");
    }
    std::string name = Advance().text;
    if (IsVarName(name)) {
      return Error("constant names must start lowercase: " + name);
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kEquals));
    Result<Expr> expr = ParseExpr();
    if (!expr.ok()) {
      return expr.status();
    }
    if (!expr->is_const()) {
      return Error("constant " + name + " must be a literal expression");
    }
    consts_[name] = expr->constant;
    return ExpectKind(TokenKind::kSemi);
  }

  Status ParseRuleOrFact() {
    Rule rule;
    rule.line = Peek().line;
    // Optional label: IDENT followed by another IDENT or 'delete'. A leading 'delete' is the
    // keyword, never a label.
    if (Peek().kind == TokenKind::kIdent && !IsVarName(Peek().text) &&
        Peek().text != "delete" && Peek(1).kind == TokenKind::kIdent) {
      rule.name = Advance().text;
    }
    if (PeekKeyword("delete")) {
      Advance();
      rule.is_delete = true;
    }
    Result<HeadAtom> head = ParseHeadAtom();
    if (!head.ok()) {
      return head.status();
    }
    rule.head = std::move(head).value();
    if (Peek().kind == TokenKind::kAt) {
      Advance();
      BOOM_RETURN_IF_ERROR(Expect(TokenKind::kIdent, "next"));
      rule.is_next = true;
    }

    if (Peek().kind == TokenKind::kSemi) {
      Advance();
      if (rule.is_delete || rule.is_next) {
        return Error("a delete or @next head requires a rule body");
      }
      return AddFact(rule);
    }

    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kTurnstile));
    while (true) {
      Result<BodyTerm> term = ParseBodyTerm();
      if (!term.ok()) {
        return term.status();
      }
      rule.body.push_back(std::move(term).value());
      if (Peek().kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kSemi));
    if (rule.name.empty()) {
      rule.name = "rule_" + std::to_string(program_.rules.size() + 1);
    }
    // Duplicate rule names are a hard error: profiling, tracing, and the dirty-rule
    // scheduler all key rules by (program, name), so a silent last-writer-wins would
    // misattribute every duplicate.
    auto [it, added] = rule_lines_.emplace(rule.name, rule.line);
    if (!added) {
      return InvalidArgument("duplicate rule name '" + rule.name + "' at line " +
                             std::to_string(rule.line) + " (first defined at line " +
                             std::to_string(it->second) + ")");
    }
    program_.rules.push_back(std::move(rule));
    return Status::Ok();
  }

  Status AddFact(const Rule& rule) {
    std::vector<Value> vals;
    vals.reserve(rule.head.args.size());
    for (const HeadArg& a : rule.head.args) {
      if (a.agg != AggKind::kNone || !a.expr.is_const()) {
        return Error("facts must have constant arguments: " + rule.head.table);
      }
      vals.push_back(a.expr.constant);
    }
    program_.facts.push_back(Fact{rule.head.table, Tuple(std::move(vals))});
    return Status::Ok();
  }

  Result<HeadAtom> ParseHeadAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected head predicate");
    }
    HeadAtom head;
    head.table = Advance().text;
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
    bool first = true;
    while (Peek().kind != TokenKind::kRParen) {
      HeadArg arg;
      if (Peek().kind == TokenKind::kAt) {
        if (!first) {
          return Error("@location is only allowed on the first argument");
        }
        Advance();
        head.has_location = true;
      }
      if (Peek().kind == TokenKind::kIdent && IsAggName(Peek().text) &&
          Peek(1).kind == TokenKind::kLt) {
        AggKind kind = AggKindFromName(Advance().text);
        Advance();  // '<'
        arg.agg = kind;
        if (kind == AggKind::kBottomK) {
          if (Peek().kind == TokenKind::kInt) {
            arg.k = Advance().literal.as_int();
          } else if (Peek().kind == TokenKind::kIdent && !IsVarName(Peek().text) &&
                     consts_.count(Peek().text) > 0 &&
                     consts_.at(Peek().text).is_int()) {
            // An integer constant (module parameter) naming k.
            arg.k = consts_.at(Advance().text).as_int();
          } else {
            return Error("bottomk<k, Expr> requires an integer k (literal or constant)");
          }
          BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kComma));
        }
        // No comparison operators inside <...>: the closing '>' would be consumed.
        Result<Expr> e = ParseAdd();
        if (!e.ok()) {
          return e.status();
        }
        arg.expr = std::move(e).value();
        BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kGt));
      } else {
        Result<Expr> e = ParseExpr();
        if (!e.ok()) {
          return e.status();
        }
        arg.expr = std::move(e).value();
      }
      head.args.push_back(std::move(arg));
      first = false;
      if (Peek().kind == TokenKind::kComma) {
        Advance();
      } else {
        break;
      }
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    return head;
  }

  Result<BodyTerm> ParseBodyTerm() {
    if (PeekKeyword("notin")) {
      Advance();
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) {
        return atom.status();
      }
      atom->negated = true;
      return BodyTerm::MakeAtom(std::move(atom).value());
    }
    // Assignment: Var := expr
    if (Peek().kind == TokenKind::kIdent && IsVarName(Peek().text) &&
        Peek(1).kind == TokenKind::kAssign) {
      Assignment assign;
      assign.var = Advance().text;
      Advance();  // ':='
      Result<Expr> e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      assign.expr = std::move(e).value();
      return BodyTerm::MakeAssign(std::move(assign));
    }
    // Table atom: lowercase ident naming a known table, followed by '('.
    if (Peek().kind == TokenKind::kIdent && !IsVarName(Peek().text) &&
        Peek(1).kind == TokenKind::kLParen) {
      if (known_tables_.count(Peek().text) > 0) {
        Result<Atom> atom = ParseAtom();
        if (!atom.ok()) {
          return atom.status();
        }
        return BodyTerm::MakeAtom(std::move(atom).value());
      }
      // Not a table: must then be a builtin-call condition when a function list is known.
      if (!options_.known_functions.empty() &&
          options_.known_functions.count(Peek().text) == 0) {
        return Error("unknown predicate or function '" + Peek().text + "'");
      }
    }
    // Otherwise, a boolean condition expression.
    Result<Expr> e = ParseExpr();
    if (!e.ok()) {
      return e.status();
    }
    return BodyTerm::MakeCondition(std::move(e).value());
  }

  Result<Atom> ParseAtom() {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected predicate name");
    }
    Atom atom;
    atom.table = Advance().text;
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kLParen));
    bool first = true;
    while (Peek().kind != TokenKind::kRParen) {
      if (Peek().kind == TokenKind::kAt) {
        if (!first) {
          return Error("@location is only allowed on the first argument");
        }
        Advance();
        atom.has_location = true;
      }
      Result<Expr> e = ParseExpr();
      if (!e.ok()) {
        return e.status();
      }
      if (!e->is_var() && !e->is_const()) {
        return Error("atom arguments must be variables or constants in " + atom.table);
      }
      atom.args.push_back(std::move(e).value());
      first = false;
      if (Peek().kind == TokenKind::kComma) {
        Advance();
      } else {
        break;
      }
    }
    BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
    return atom;
  }

  // Expression grammar, precedence climbing.
  Result<Expr> ParseExpr() { return ParseOr(); }

  Result<Expr> ParseOr() {
    Result<Expr> lhs = ParseAnd();
    if (!lhs.ok()) {
      return lhs;
    }
    Expr e = std::move(lhs).value();
    while (Peek().kind == TokenKind::kOr) {
      Advance();
      Result<Expr> rhs = ParseAnd();
      if (!rhs.ok()) {
        return rhs;
      }
      e = Expr::Call("||", {std::move(e), std::move(rhs).value()});
    }
    return e;
  }

  Result<Expr> ParseAnd() {
    Result<Expr> lhs = ParseCmp();
    if (!lhs.ok()) {
      return lhs;
    }
    Expr e = std::move(lhs).value();
    while (Peek().kind == TokenKind::kAnd) {
      Advance();
      Result<Expr> rhs = ParseCmp();
      if (!rhs.ok()) {
        return rhs;
      }
      e = Expr::Call("&&", {std::move(e), std::move(rhs).value()});
    }
    return e;
  }

  Result<Expr> ParseCmp() {
    Result<Expr> lhs = ParseAdd();
    if (!lhs.ok()) {
      return lhs;
    }
    Expr e = std::move(lhs).value();
    const char* op = nullptr;
    switch (Peek().kind) {
      case TokenKind::kEq:
        op = "==";
        break;
      case TokenKind::kNe:
        op = "!=";
        break;
      case TokenKind::kLt:
        op = "<";
        break;
      case TokenKind::kLe:
        op = "<=";
        break;
      case TokenKind::kGt:
        op = ">";
        break;
      case TokenKind::kGe:
        op = ">=";
        break;
      default:
        return e;
    }
    Advance();
    Result<Expr> rhs = ParseAdd();
    if (!rhs.ok()) {
      return rhs;
    }
    return Expr::Call(op, {std::move(e), std::move(rhs).value()});
  }

  Result<Expr> ParseAdd() {
    Result<Expr> lhs = ParseMul();
    if (!lhs.ok()) {
      return lhs;
    }
    Expr e = std::move(lhs).value();
    while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
      const char* op = Peek().kind == TokenKind::kPlus ? "+" : "-";
      Advance();
      Result<Expr> rhs = ParseMul();
      if (!rhs.ok()) {
        return rhs;
      }
      e = Expr::Call(op, {std::move(e), std::move(rhs).value()});
    }
    return e;
  }

  Result<Expr> ParseMul() {
    Result<Expr> lhs = ParseUnary();
    if (!lhs.ok()) {
      return lhs;
    }
    Expr e = std::move(lhs).value();
    while (Peek().kind == TokenKind::kStar || Peek().kind == TokenKind::kSlash ||
           Peek().kind == TokenKind::kPercent) {
      const char* op = Peek().kind == TokenKind::kStar
                           ? "*"
                           : (Peek().kind == TokenKind::kSlash ? "/" : "%");
      Advance();
      Result<Expr> rhs = ParseUnary();
      if (!rhs.ok()) {
        return rhs;
      }
      e = Expr::Call(op, {std::move(e), std::move(rhs).value()});
    }
    return e;
  }

  Result<Expr> ParseUnary() {
    if (Peek().kind == TokenKind::kMinus) {
      Advance();
      Result<Expr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      Expr e = std::move(operand).value();
      // Fold literal negation so atom arguments can be negative constants.
      if (e.is_const() && e.constant.is_int()) {
        return Expr::Const(Value(-e.constant.as_int()));
      }
      if (e.is_const() && e.constant.is_double()) {
        return Expr::Const(Value(-e.constant.as_double()));
      }
      return Expr::Call("neg", {std::move(e)});
    }
    if (Peek().kind == TokenKind::kBang) {
      Advance();
      Result<Expr> operand = ParseUnary();
      if (!operand.ok()) {
        return operand;
      }
      return Expr::Call("!", {std::move(operand).value()});
    }
    return ParsePrimary();
  }

  Result<Expr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt:
      case TokenKind::kDouble:
      case TokenKind::kString:
        return Expr::Const(Advance().literal);
      case TokenKind::kUnderscore: {
        Advance();
        return Expr::Var("_Anon" + std::to_string(anon_counter_++));
      }
      case TokenKind::kLParen: {
        Advance();
        Result<Expr> e = ParseExpr();
        if (!e.ok()) {
          return e;
        }
        BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
        return e;
      }
      case TokenKind::kLBracket: {
        Advance();
        std::vector<Expr> elems;
        while (Peek().kind != TokenKind::kRBracket) {
          Result<Expr> e = ParseExpr();
          if (!e.ok()) {
            return e;
          }
          elems.push_back(std::move(e).value());
          if (Peek().kind == TokenKind::kComma) {
            Advance();
          } else {
            break;
          }
        }
        BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRBracket));
        // A list of constants folds to a constant list; otherwise a list() call.
        bool all_const = true;
        for (const Expr& e : elems) {
          all_const = all_const && e.is_const();
        }
        if (all_const) {
          ValueList vals;
          vals.reserve(elems.size());
          for (const Expr& e : elems) {
            vals.push_back(e.constant);
          }
          return Expr::Const(Value(std::move(vals)));
        }
        return Expr::Call("list", std::move(elems));
      }
      case TokenKind::kIdent: {
        std::string name = Advance().text;
        if (name == "true") {
          return Expr::Const(Value(true));
        }
        if (name == "false") {
          return Expr::Const(Value(false));
        }
        if (name == "nil") {
          return Expr::Const(Value());
        }
        if (IsVarName(name)) {
          return Expr::Var(std::move(name));
        }
        if (Peek().kind == TokenKind::kLParen) {
          Advance();
          std::vector<Expr> args;
          while (Peek().kind != TokenKind::kRParen) {
            Result<Expr> e = ParseExpr();
            if (!e.ok()) {
              return e;
            }
            args.push_back(std::move(e).value());
            if (Peek().kind == TokenKind::kComma) {
              Advance();
            } else {
              break;
            }
          }
          BOOM_RETURN_IF_ERROR(ExpectKind(TokenKind::kRParen));
          return Expr::Call(std::move(name), std::move(args));
        }
        auto it = consts_.find(name);
        if (it != consts_.end()) {
          return Expr::Const(it->second);
        }
        return Error("unknown constant or misplaced identifier '" + name + "'");
      }
      default:
        return Error("expected expression");
    }
  }

  std::vector<Token> tokens_;
  const ParserOptions& options_;
  size_t pos_ = 0;
  Program program_;
  std::set<std::string> known_tables_;
  std::map<std::string, Value> consts_;
  std::map<std::string, int> rule_lines_;  // rule name -> first definition line
  int anon_counter_ = 0;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, const ParserOptions& options) {
  Result<std::vector<Token>> tokens = Tokenize(source);
  if (!tokens.ok()) {
    return tokens.status();
  }
  if (options.known_functions.empty()) {
    // Default to the standard builtin library so typo'd predicates fail at parse time.
    ParserOptions with_builtins = options;
    for (const std::string& fn : BuiltinRegistry::Standard().Names()) {
      with_builtins.known_functions.insert(fn);
    }
    return Parser(std::move(tokens).value(), with_builtins).Run();
  }
  return Parser(std::move(tokens).value(), options).Run();
}

}  // namespace boom
