#include "src/overlog/module.h"

#include <utility>

#include "src/overlog/parser.h"

namespace boom {

namespace {

bool SameSchema(const TableDef& a, const TableDef& b) {
  return a.kind == b.kind && a.columns == b.columns && a.key_columns == b.key_columns &&
         a.ttl_ms == b.ttl_ms;
}

const char* KindName(ValueKind kind) {
  switch (kind) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kDouble:
      return "double";
    case ValueKind::kString:
      return "string";
    case ValueKind::kList:
      return "list";
  }
  return "?";
}

}  // namespace

ProgramBuilder::ProgramBuilder(std::string program_name) {
  program_.name = std::move(program_name);
}

ProgramBuilder& ProgramBuilder::WithExternalTables(std::set<std::string> tables) {
  analyzer_options_.external_tables = std::move(tables);
  return *this;
}

ProgramBuilder& ProgramBuilder::WithExternalInputs(std::set<std::string> events) {
  analyzer_options_.external_inputs = std::move(events);
  return *this;
}

ProgramBuilder& ProgramBuilder::WithExternalOutputs(std::set<std::string> tables) {
  analyzer_options_.external_outputs = std::move(tables);
  return *this;
}

Status ProgramBuilder::Add(const Module& module, const ParamBindings& bindings) {
  ParserOptions options;
  for (const auto& [name, value] : bindings) {
    bool known = false;
    for (const ModuleParam& param : module.params) {
      if (param.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return InvalidArgument("module '" + module.name + "' has no parameter '" + name +
                             "'");
    }
  }
  for (const ModuleParam& param : module.params) {
    auto it = bindings.find(param.name);
    if (it == bindings.end()) {
      if (param.required) {
        return InvalidArgument("module '" + module.name +
                               "' missing required parameter '" + param.name + "'");
      }
      options.consts[param.name] = param.def;
      continue;
    }
    Value bound = it->second;
    // Ints promote to double params (callers pass `2000` for a timeout); nothing else
    // coerces — a silently stringified number would change parse semantics.
    if (bound.kind() != param.kind) {
      if (param.kind == ValueKind::kDouble && bound.is_int()) {
        bound = Value(static_cast<double>(bound.as_int()));
      } else {
        return InvalidArgument("module '" + module.name + "' parameter '" + param.name +
                               "' wants " + KindName(param.kind) + ", got " +
                               KindName(bound.kind()));
      }
    }
    options.consts[param.name] = std::move(bound);
  }

  options.known_tables = analyzer_options_.external_tables;
  for (const TableDef& def : program_.tables) {
    options.known_tables.insert(def.name);
  }
  for (const TableDef& def : program_.externs) {
    options.known_tables.insert(def.name);
  }
  for (const TimerDecl& timer : program_.timers) {
    options.known_tables.insert(timer.name);
  }

  std::string header_name = program_.name.empty() ? module.name : program_.name;
  Result<Program> fragment =
      ParseProgram("program " + header_name + ";\n" + module.source, options);
  if (!fragment.ok()) {
    return InvalidArgument("module '" + module.name +
                           "': " + fragment.status().message());
  }
  return Merge(std::move(fragment).value(), module.name);
}

Status ProgramBuilder::AddProgramText(std::string_view source, const std::string& label) {
  ParserOptions options;
  options.known_tables = analyzer_options_.external_tables;
  for (const TableDef& def : program_.tables) {
    options.known_tables.insert(def.name);
  }
  for (const TableDef& def : program_.externs) {
    options.known_tables.insert(def.name);
  }
  for (const TimerDecl& timer : program_.timers) {
    options.known_tables.insert(timer.name);
  }
  Result<Program> fragment = ParseProgram(source, options);
  if (!fragment.ok()) {
    return InvalidArgument(label + ": " + fragment.status().message());
  }
  if (program_.name.empty()) {
    program_.name = fragment->name;
  }
  return Merge(std::move(fragment).value(), label);
}

ProgramBuilder& ProgramBuilder::AddFact(std::string table, Tuple tuple) {
  Fact fact;
  fact.table = std::move(table);
  fact.tuple = std::move(tuple);
  program_.facts.push_back(std::move(fact));
  return *this;
}

ProgramBuilder& ProgramBuilder::AddWatch(std::string table) {
  for (const std::string& w : program_.watches) {
    if (w == table) {
      return *this;
    }
  }
  program_.watches.push_back(std::move(table));
  return *this;
}

Status ProgramBuilder::Merge(Program fragment, const std::string& label) {
  auto find_decl = [this](const std::string& name) -> TableDef* {
    for (TableDef& def : program_.tables) {
      if (def.name == name) {
        return &def;
      }
    }
    return nullptr;
  };
  auto find_extern = [this](const std::string& name) -> size_t {
    for (size_t i = 0; i < program_.externs.size(); ++i) {
      if (program_.externs[i].name == name) {
        return i;
      }
    }
    return program_.externs.size();
  };

  for (TableDef& def : fragment.tables) {
    if (TableDef* existing = find_decl(def.name)) {
      if (!SameSchema(*existing, def)) {
        return InvalidArgument("module '" + label + "' redeclares '" + def.name +
                               "' with a different schema");
      }
      continue;
    }
    // A real declaration satisfies (and replaces) a pending extern expectation.
    size_t ei = find_extern(def.name);
    if (ei < program_.externs.size()) {
      if (!SameSchema(program_.externs[ei], def)) {
        return InvalidArgument("module '" + label + "' declares '" + def.name +
                               "' with a schema conflicting with an earlier extern");
      }
      program_.externs.erase(program_.externs.begin() + ei);
    }
    declared_.insert(def.name);
    program_.tables.push_back(std::move(def));
  }
  for (TableDef& def : fragment.externs) {
    if (TableDef* existing = find_decl(def.name)) {
      if (!SameSchema(*existing, def)) {
        return InvalidArgument("module '" + label + "' extern for '" + def.name +
                               "' conflicts with its declaration");
      }
      continue;  // already satisfied
    }
    size_t ei = find_extern(def.name);
    if (ei < program_.externs.size()) {
      if (!SameSchema(program_.externs[ei], def)) {
        return InvalidArgument("module '" + label + "' extern for '" + def.name +
                               "' conflicts with an earlier extern");
      }
      continue;
    }
    program_.externs.push_back(std::move(def));
  }
  for (TimerDecl& timer : fragment.timers) {
    auto [it, added] = timer_sources_.emplace(timer.name, label);
    if (!added) {
      return InvalidArgument("timer '" + timer.name + "' declared by both module '" +
                             it->second + "' and module '" + label + "'");
    }
    program_.timers.push_back(std::move(timer));
  }
  for (Rule& rule : fragment.rules) {
    auto [it, added] = rule_sources_.emplace(rule.name, label);
    if (!added) {
      return InvalidArgument("rule '" + rule.name + "' defined by both module '" +
                             it->second + "' and module '" + label + "'");
    }
    program_.rules.push_back(std::move(rule));
  }
  for (std::string& watch : fragment.watches) {
    AddWatch(std::move(watch));
  }
  for (Fact& fact : fragment.facts) {
    program_.facts.push_back(std::move(fact));
  }
  return Status::Ok();
}

Result<Program> ProgramBuilder::Build(AnalyzerReport* report_out) const {
  AnalyzerReport report = AnalyzeProgram(program_, analyzer_options_);
  if (report_out != nullptr) {
    *report_out = report;
  }
  if (!report.ok()) {
    return InvalidArgument("program '" + program_.name + "' failed analysis:\n" +
                           report.ToString());
  }
  Program program = program_;
  program.external_inputs.assign(analyzer_options_.external_inputs.begin(),
                                 analyzer_options_.external_inputs.end());
  program.external_outputs.assign(analyzer_options_.external_outputs.begin(),
                                  analyzer_options_.external_outputs.end());
  return program;
}

}  // namespace boom
