// Value: the dynamically-typed scalar (or list) stored in Overlog tuples.
//
// Overlog is dynamically typed, like its ancestors P2 and JOL. A Value is one of:
//   nil, bool, int64, double, string, list<Value>.
// Values have a total order (kind rank first, then payload) so they can key maps and drive
// aggregate functions such as min/max/bottomk.
//
// Strings are interned: a per-process table maps each distinct string to one refcounted
// InternedString, so string Values are a shared_ptr copy to move, a pointer compare for
// equality, and a precomputed hash to probe with. The total order is unchanged (same-pointer
// short-circuit, then lexicographic payload), so aggregates and sort-sensitive behaviour are
// identical to the pre-interning engine. Entries die with their last Value: the interner
// holds weak references and removes entries when the final handle drops.

#ifndef SRC_OVERLOG_VALUE_H_
#define SRC_OVERLOG_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace boom {

class Value;
using ValueList = std::vector<Value>;

enum class ValueKind { kNil = 0, kBool, kInt, kDouble, kString, kList };

// One distinct string held by the per-process interner. `hash` uses the same function as
// the pre-interning engine (std::hash<std::string>), so hash-ordered iteration (and with it
// derivation order) is unchanged.
struct InternedString {
  std::string text;
  size_t hash = 0;
};
using InternedStringPtr = std::shared_ptr<const InternedString>;

// Returns the unique live handle for `s`, creating it if absent. Thread-safe: the backing
// table is sharded by hash (16 shards, one mutex each), and each thread keeps a small
// direct-mapped cache of recent interns in front of it.
InternedStringPtr InternString(std::string s);
// Live entries in the interner (diagnostics/tests).
size_t InternedStringCount();

// Each thread's InternString fast-path cache pins up to 256 recently interned strings. When
// engines migrate across pool threads, those pins otherwise accumulate on whichever workers
// happened to run them — making InternedStringCount() depend on scheduling and retaining
// strings whose tuples are long gone. InvalidateInternCaches() marks every thread's cache
// stale (each thread drops its pins on its next InternString call);
// FlushInternCacheForCurrentThread() drops the calling thread's pins immediately. Run the
// flush on all pool workers (ThreadPool::Broadcast) to restore the exact serial retention
// behavior.
void InvalidateInternCaches();
void FlushInternCacheForCurrentThread();

class Value {
 public:
  Value() : rep_(std::monostate{}) {}
  Value(bool b) : rep_(b) {}                     // NOLINT(google-explicit-constructor)
  Value(int64_t i) : rep_(i) {}                  // NOLINT(google-explicit-constructor)
  Value(int i) : rep_(static_cast<int64_t>(i)) {}  // NOLINT(google-explicit-constructor)
  Value(double d) : rep_(d) {}                   // NOLINT(google-explicit-constructor)
  Value(std::string s)                            // NOLINT(google-explicit-constructor)
      : rep_(InternString(std::move(s))) {}
  Value(const char* s) : rep_(InternString(s)) {}  // NOLINT(google-explicit-constructor)
  Value(ValueList list)                           // NOLINT(google-explicit-constructor)
      : rep_(std::make_shared<ValueList>(std::move(list))) {}

  ValueKind kind() const { return static_cast<ValueKind>(rep_.index()); }

  bool is_nil() const { return kind() == ValueKind::kNil; }
  bool is_bool() const { return kind() == ValueKind::kBool; }
  bool is_int() const { return kind() == ValueKind::kInt; }
  bool is_double() const { return kind() == ValueKind::kDouble; }
  bool is_numeric() const { return is_int() || is_double(); }
  bool is_string() const { return kind() == ValueKind::kString; }
  bool is_list() const { return kind() == ValueKind::kList; }

  bool as_bool() const { return std::get<bool>(rep_); }
  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<InternedStringPtr>(rep_)->text; }
  const ValueList& as_list() const { return *std::get<std::shared_ptr<ValueList>>(rep_); }

  // The interned handle backing a string Value (tests/diagnostics; null for non-strings).
  const InternedString* interned() const {
    const InternedStringPtr* p = std::get_if<InternedStringPtr>(&rep_);
    return p == nullptr ? nullptr : p->get();
  }

  // Numeric coercion: int promotes to double when mixed. Non-numeric -> 0.
  double ToDouble() const;
  // Truthiness: nil/false/0/""/[] are false, everything else true.
  bool Truthy() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  // Total order across kinds: nil < bool < numeric < string < list.
  // Mixed int/double compare numerically.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return *this < other || *this == other; }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  size_t Hash() const;

  // Display form: strings quoted inside lists, bare at top level is handled by callers.
  std::string ToString() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, InternedStringPtr,
               std::shared_ptr<ValueList>>
      rep_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace boom

#endif  // SRC_OVERLOG_VALUE_H_
