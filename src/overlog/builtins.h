// Builtin function registry used in Overlog expressions.
//
// Builtins are pure functions of their arguments plus a read-only EvalContext carrying the
// engine's virtual clock, local node address, and a deterministic per-engine RNG (f_now,
// f_me, f_rand...). Programs can extend an engine's registry before installation.

#ifndef SRC_OVERLOG_BUILTINS_H_
#define SRC_OVERLOG_BUILTINS_H_

#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/value.h"

namespace boom {

struct EvalContext {
  double now_ms = 0;                  // engine virtual time
  std::string local_address;          // this node's address
  std::mt19937_64* rng = nullptr;     // deterministic per-engine generator (may be null)
  // Monotonic per-engine counter backing f_unique_id(); mixed with an address-derived salt
  // so ids minted by different nodes never collide.
  uint64_t* id_counter = nullptr;
  uint64_t id_salt = 0;
};

class BuiltinRegistry {
 public:
  using Fn = std::function<Result<Value>(const EvalContext&, const std::vector<Value>&)>;

  BuiltinRegistry() = default;

  // A registry preloaded with operators and the standard function library.
  static BuiltinRegistry Standard();

  // arity -1 means variadic. Re-registering a name replaces it. Registrations default to
  // NOT pure: the parallel fixpoint serializes any rule calling an impure builtin, so an
  // unannotated custom function is safe by default.
  void Register(const std::string& name, int arity, Fn fn);

  // Purity = the result depends only on the arguments and the read-only parts of the
  // EvalContext (clock, address, salt). Impure builtins (f_rand/f_randint advance the
  // engine Rng; f_unique_id advances the id counter) must run on the engine thread, in
  // program order, or parallel evaluation would reorder their state mutations.
  void MarkPure(const std::string& name);
  void MarkImpure(const std::string& name);
  bool IsPure(const std::string& name) const {
    auto it = fns_.find(name);
    return it != fns_.end() && it->second.pure;
  }

  bool Has(const std::string& name) const { return fns_.count(name) > 0; }

  std::vector<std::string> Names() const {
    std::vector<std::string> out;
    out.reserve(fns_.size());
    for (const auto& [name, entry] : fns_) {
      out.push_back(name);
    }
    return out;
  }

  Result<Value> Call(const EvalContext& ctx, const std::string& name,
                     const std::vector<Value>& args) const;

 private:
  struct Entry {
    int arity;
    Fn fn;
    bool pure = false;
  };
  std::unordered_map<std::string, Entry> fns_;
};

}  // namespace boom

#endif  // SRC_OVERLOG_BUILTINS_H_
