#include "src/overlog/table.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/base/logging.h"

namespace boom {

namespace {
bool g_disable_index_catchup = false;
}  // namespace

void Table::SetDisableIndexCatchupForBenchmarks(bool disable) {
  g_disable_index_catchup = disable;
}

std::vector<size_t> TableDef::EffectiveKey() const {
  if (!key_columns.empty()) {
    return key_columns;
  }
  std::vector<size_t> all(columns.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

Table::Table(TableDef def) : def_(std::move(def)) {
  effective_key_ = def_.EffectiveKey();
  key_is_whole_row_ = effective_key_.size() == def_.arity();
}

Table::InsertOutcome Table::Insert(Tuple tuple, double now_ms) {
  BOOM_CHECK(tuple.size() == def_.arity())
      << "arity mismatch inserting into " << def_.name << ": got " << tuple.size()
      << ", want " << def_.arity();
  Tuple key = KeyOf(tuple);
  if (def_.ttl_ms > 0) {
    row_time_[key] = now_ms;  // stamp, or refresh the lease on re-insertion
  }
  // Single hash-table traversal for both the new-key and existing-key cases; the mapped
  // Tuple is only copied (a refcount bump) when the key is actually new.
  auto [it, added] = rows_.try_emplace(std::move(key), tuple);
  if (added) {
    insert_log_.push_back(&it->second);
    ++version_;
    return InsertOutcome::kInserted;
  }
  if (it->second == tuple) {
    return InsertOutcome::kUnchanged;
  }
  if (incremental_maintenance_) {
    // Remove the old payload from every cached index while it is still readable, assign in
    // place (the node address is stable), then re-add under the new projections. No epoch
    // bump: every surviving index stays fully caught up.
    RemoveRowFromIndexes(&it->second);
    it->second = std::move(tuple);
    AddRowToIndexes(&it->second);
    ++version_;
    return InsertOutcome::kReplaced;
  }
  it->second = std::move(tuple);
  ++version_;
  ++mutation_epoch_;  // cached index entries may point at the replaced payload
  insert_log_.clear();
  return InsertOutcome::kReplaced;
}

bool Table::Erase(const Tuple& tuple) {
  auto it = rows_.find(KeyOf(tuple));
  if (it == rows_.end() || it->second != tuple) {
    return false;
  }
  if (incremental_maintenance_) {
    RemoveRowFromIndexes(&it->second);
    rows_.erase(it);
    ++version_;
    return true;
  }
  rows_.erase(it);
  ++version_;
  ++mutation_epoch_;
  insert_log_.clear();
  return true;
}

bool Table::EraseByKey(const Tuple& key) {
  auto it = rows_.find(key);
  if (it == rows_.end()) {
    return false;
  }
  if (incremental_maintenance_) {
    RemoveRowFromIndexes(&it->second);
    rows_.erase(it);
    ++version_;
    return true;
  }
  rows_.erase(it);
  ++version_;
  ++mutation_epoch_;
  insert_log_.clear();
  return true;
}

void Table::RemoveRowFromIndexes(const Tuple* row) {
  for (auto idx_it = indexes_.begin(); idx_it != indexes_.end();) {
    CachedIndex& cached = idx_it->second;
    if (!cached.built || cached.epoch != mutation_epoch_) {
      // Stale from a pre-optimizer full-invalidation (Clear/expiry/epoch bump): drop it;
      // the next probe rebuilds from scratch anyway.
      idx_it = indexes_.erase(idx_it);
      continue;
    }
    // Fold pending plain inserts first so the bucket for `row` is present even when the row
    // was inserted after this index last caught up.
    for (; cached.log_pos < insert_log_.size(); ++cached.log_pos) {
      const Tuple* logged = insert_log_[cached.log_pos];
      cached.index[logged->Project(idx_it->first)].push_back(logged);
    }
    auto bucket_it = cached.index.find(row->Project(idx_it->first));
    if (bucket_it != cached.index.end()) {
      std::vector<const Tuple*>& bucket = bucket_it->second;
      // std::find + erase keeps the surviving rows' relative order, which derivation order
      // (and with it trace order) observes.
      auto pos = std::find(bucket.begin(), bucket.end(), row);
      if (pos != bucket.end()) {
        bucket.erase(pos);
      }
      if (bucket.empty()) {
        cached.index.erase(bucket_it);
      }
    }
    ++idx_it;
  }
  insert_log_.clear();
  for (auto& [cols, cached] : indexes_) {
    cached.log_pos = 0;
  }
}

void Table::AddRowToIndexes(const Tuple* row) {
  for (auto& [cols, cached] : indexes_) {
    cached.index[row->Project(cols)].push_back(row);
  }
}

const Tuple* Table::LookupByKey(const Tuple& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool Table::Contains(const Tuple& tuple) const {
  const Tuple* row = LookupByKey(KeyOf(tuple));
  return row != nullptr && *row == tuple;
}

std::vector<Tuple> Table::Rows() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    out.push_back(row);
  }
  return out;
}

const Index& Table::GetIndex(const std::vector<size_t>& cols) {
  CachedIndex& cached = indexes_[cols];
  if (!cached.built || cached.epoch != mutation_epoch_ ||
      (g_disable_index_catchup && cached.log_pos != insert_log_.size())) {
    // Full rebuild: a replacement or erase may have invalidated cached row pointers.
    if (cached.built) {
      index_rebuilds_.fetch_add(1, std::memory_order_relaxed);
    }
    cached.index.clear();
    for (const auto& [key, row] : rows_) {
      cached.index[row.Project(cols)].push_back(&row);
    }
    cached.built = true;
    cached.epoch = mutation_epoch_;
    cached.log_pos = insert_log_.size();
    return cached.index;
  }
  // Catch up on plain inserts only: O(delta) per probe instead of O(table).
  for (; cached.log_pos < insert_log_.size(); ++cached.log_pos) {
    const Tuple* row = insert_log_[cached.log_pos];
    cached.index[row->Project(cols)].push_back(row);
  }
  return cached.index;
}

const std::vector<const Tuple*>& Table::Probe(const std::vector<size_t>& cols,
                                              const Tuple& probe) {
  const Index& index = GetIndex(cols);
  probes_.fetch_add(1, std::memory_order_relaxed);
  auto it = index.find(probe);
  if (it == index.end()) {
    return empty_result_;
  }
  probe_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

const std::vector<const Tuple*>& Table::Probe(const std::vector<size_t>& cols,
                                              const TupleView& probe) {
  const Index& index = GetIndex(cols);
  probes_.fetch_add(1, std::memory_order_relaxed);
  auto it = index.find(probe);
  if (it == index.end()) {
    return empty_result_;
  }
  probe_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

uint64_t Table::DistinctCount(size_t col) const {
  if (col >= def_.arity()) {
    return 0;
  }
  std::unordered_set<Tuple, TupleHash, TupleEq> values;
  values.reserve(rows_.size());
  const std::vector<size_t> cols{col};
  for (const auto& [key, row] : rows_) {
    values.insert(row.Project(cols));
  }
  return values.size();
}

void Table::AssertProbeFresh(uint64_t generation) const {
  BOOM_CHECK(version_ == generation)
      << "stale Table::Probe result used after mutation of " << def_.name << " (captured gen "
      << generation << ", now " << version_ << ")";
}

void Table::Clear() {
  if (!rows_.empty()) {
    rows_.clear();
    row_time_.clear();
    ++version_;
    ++mutation_epoch_;
    insert_log_.clear();
  }
}

std::vector<Tuple> Table::ExpireOlderThan(double cutoff_ms) {
  std::vector<Tuple> expired;
  if (def_.ttl_ms <= 0) {
    return expired;
  }
  for (auto it = row_time_.begin(); it != row_time_.end();) {
    if (it->second < cutoff_ms) {
      auto row_it = rows_.find(it->first);
      if (row_it != rows_.end()) {
        expired.push_back(row_it->second);
        rows_.erase(row_it);
      }
      it = row_time_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) {
    ++version_;
    ++mutation_epoch_;
    insert_log_.clear();
  }
  return expired;
}

}  // namespace boom
