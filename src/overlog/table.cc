#include "src/overlog/table.h"

#include <numeric>

#include "src/base/logging.h"

namespace boom {

namespace {
bool g_disable_index_catchup = false;
}  // namespace

void Table::SetDisableIndexCatchupForBenchmarks(bool disable) {
  g_disable_index_catchup = disable;
}

std::vector<size_t> TableDef::EffectiveKey() const {
  if (!key_columns.empty()) {
    return key_columns;
  }
  std::vector<size_t> all(columns.size());
  std::iota(all.begin(), all.end(), 0);
  return all;
}

Table::Table(TableDef def) : def_(std::move(def)) {
  effective_key_ = def_.EffectiveKey();
  key_is_whole_row_ = effective_key_.size() == def_.arity();
}

Table::InsertOutcome Table::Insert(Tuple tuple, double now_ms) {
  BOOM_CHECK(tuple.size() == def_.arity())
      << "arity mismatch inserting into " << def_.name << ": got " << tuple.size()
      << ", want " << def_.arity();
  Tuple key = KeyOf(tuple);
  if (def_.ttl_ms > 0) {
    row_time_[key] = now_ms;  // stamp, or refresh the lease on re-insertion
  }
  // Single hash-table traversal for both the new-key and existing-key cases; the mapped
  // Tuple is only copied (a refcount bump) when the key is actually new.
  auto [it, added] = rows_.try_emplace(std::move(key), tuple);
  if (added) {
    insert_log_.push_back(&it->second);
    ++version_;
    return InsertOutcome::kInserted;
  }
  if (it->second == tuple) {
    return InsertOutcome::kUnchanged;
  }
  it->second = std::move(tuple);
  ++version_;
  ++mutation_epoch_;  // cached index entries may point at the replaced payload
  insert_log_.clear();
  return InsertOutcome::kReplaced;
}

bool Table::Erase(const Tuple& tuple) {
  auto it = rows_.find(KeyOf(tuple));
  if (it == rows_.end() || it->second != tuple) {
    return false;
  }
  rows_.erase(it);
  ++version_;
  ++mutation_epoch_;
  insert_log_.clear();
  return true;
}

bool Table::EraseByKey(const Tuple& key) {
  if (rows_.erase(key) > 0) {
    ++version_;
    ++mutation_epoch_;
    insert_log_.clear();
    return true;
  }
  return false;
}

const Tuple* Table::LookupByKey(const Tuple& key) const {
  auto it = rows_.find(key);
  return it == rows_.end() ? nullptr : &it->second;
}

bool Table::Contains(const Tuple& tuple) const {
  const Tuple* row = LookupByKey(KeyOf(tuple));
  return row != nullptr && *row == tuple;
}

std::vector<Tuple> Table::Rows() const {
  std::vector<Tuple> out;
  out.reserve(rows_.size());
  for (const auto& [key, row] : rows_) {
    out.push_back(row);
  }
  return out;
}

const Index& Table::GetIndex(const std::vector<size_t>& cols) {
  CachedIndex& cached = indexes_[cols];
  if (!cached.built || cached.epoch != mutation_epoch_ ||
      (g_disable_index_catchup && cached.log_pos != insert_log_.size())) {
    // Full rebuild: a replacement or erase may have invalidated cached row pointers.
    cached.index.clear();
    for (const auto& [key, row] : rows_) {
      cached.index[row.Project(cols)].push_back(&row);
    }
    cached.built = true;
    cached.epoch = mutation_epoch_;
    cached.log_pos = insert_log_.size();
    return cached.index;
  }
  // Catch up on plain inserts only: O(delta) per probe instead of O(table).
  for (; cached.log_pos < insert_log_.size(); ++cached.log_pos) {
    const Tuple* row = insert_log_[cached.log_pos];
    cached.index[row->Project(cols)].push_back(row);
  }
  return cached.index;
}

const std::vector<const Tuple*>& Table::Probe(const std::vector<size_t>& cols,
                                              const Tuple& probe) {
  const Index& index = GetIndex(cols);
  auto it = index.find(probe);
  if (it == index.end()) {
    return empty_result_;
  }
  return it->second;
}

const std::vector<const Tuple*>& Table::Probe(const std::vector<size_t>& cols,
                                              const TupleView& probe) {
  const Index& index = GetIndex(cols);
  auto it = index.find(probe);
  if (it == index.end()) {
    return empty_result_;
  }
  return it->second;
}

void Table::AssertProbeFresh(uint64_t generation) const {
  BOOM_CHECK(version_ == generation)
      << "stale Table::Probe result used after mutation of " << def_.name << " (captured gen "
      << generation << ", now " << version_ << ")";
}

void Table::Clear() {
  if (!rows_.empty()) {
    rows_.clear();
    row_time_.clear();
    ++version_;
    ++mutation_epoch_;
    insert_log_.clear();
  }
}

std::vector<Tuple> Table::ExpireOlderThan(double cutoff_ms) {
  std::vector<Tuple> expired;
  if (def_.ttl_ms <= 0) {
    return expired;
  }
  for (auto it = row_time_.begin(); it != row_time_.end();) {
    if (it->second < cutoff_ms) {
      auto row_it = rows_.find(it->first);
      if (row_it != rows_.end()) {
        expired.push_back(row_it->second);
        rows_.erase(row_it);
      }
      it = row_time_.erase(it);
    } else {
      ++it;
    }
  }
  if (!expired.empty()) {
    ++version_;
    ++mutation_epoch_;
    insert_log_.clear();
  }
  return expired;
}

}  // namespace boom
