#include "src/overlog/analyzer.h"

#include <algorithm>
#include <map>

#include "src/base/strings.h"

namespace boom {

namespace {

bool IsAnonVar(const std::string& name) { return name.rfind("_Anon", 0) == 0; }

bool SameSchema(const TableDef& a, const TableDef& b) {
  return a.kind == b.kind && a.columns == b.columns && a.key_columns == b.key_columns &&
         a.ttl_ms == b.ttl_ms;
}

std::string SchemaString(const TableDef& def) {
  std::string out = (def.kind == TableKind::kEvent ? "event " : "table ") + def.name + "(" +
                    StrJoin(def.columns, ", ") + ")";
  if (!def.key_columns.empty()) {
    std::vector<std::string> keys;
    for (size_t k : def.key_columns) {
      keys.push_back(std::to_string(k));
    }
    out += " keys(" + StrJoin(keys, ", ") + ")";
  }
  return out;
}

// Iterative Tarjan SCC over the table dependency graph (same shape as the planner's
// stratification pass, kept separate so the analyzer has no dependency on a catalog).
class SccFinder {
 public:
  explicit SccFinder(const std::map<std::string, std::set<std::string>>& adj) : adj_(adj) {}

  std::map<std::string, int> Run() {
    for (const auto& [node, succs] : adj_) {
      if (index_.count(node) == 0) {
        Strongconnect(node);
      }
    }
    return component_;
  }

 private:
  void Strongconnect(const std::string& root) {
    struct Frame {
      std::string node;
      std::vector<std::string> succs;
      size_t next_succ = 0;
    };
    std::vector<Frame> stack;
    auto push_node = [this, &stack](const std::string& n) {
      index_[n] = lowlink_[n] = next_index_++;
      tarjan_stack_.push_back(n);
      on_stack_.insert(n);
      Frame f;
      f.node = n;
      auto it = adj_.find(n);
      if (it != adj_.end()) {
        f.succs.assign(it->second.begin(), it->second.end());
      }
      stack.push_back(std::move(f));
    };
    push_node(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_succ < frame.succs.size()) {
        const std::string& succ = frame.succs[frame.next_succ++];
        if (index_.count(succ) == 0) {
          push_node(succ);
        } else if (on_stack_.count(succ) > 0) {
          lowlink_[frame.node] = std::min(lowlink_[frame.node], index_[succ]);
        }
      } else {
        if (lowlink_[frame.node] == index_[frame.node]) {
          while (true) {
            std::string top = tarjan_stack_.back();
            tarjan_stack_.pop_back();
            on_stack_.erase(top);
            component_[top] = next_component_;
            if (top == frame.node) {
              break;
            }
          }
          ++next_component_;
        }
        std::string done = frame.node;
        stack.pop_back();
        if (!stack.empty()) {
          lowlink_[stack.back().node] =
              std::min(lowlink_[stack.back().node], lowlink_[done]);
        }
      }
    }
  }

  const std::map<std::string, std::set<std::string>>& adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::map<std::string, int> component_;
  std::vector<std::string> tarjan_stack_;
  std::set<std::string> on_stack_;
  int next_index_ = 0;
  int next_component_ = 0;
};

class Analyzer {
 public:
  Analyzer(const Program& program, const AnalyzerOptions& options)
      : program_(program), options_(options) {}

  AnalyzerReport Run() {
    CollectDeclarations();
    CheckDuplicateRules();
    CheckDuplicateTimers();
    CheckReferences();
    CheckBindings();
    CheckStratification();
    CheckProducers();
    CheckReaders();
    if (options_.advisories) {
      AdviseIndexes();
      AdviseSharedPrefixes();
    }
    std::stable_sort(report_.diagnostics.begin(), report_.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.severity < b.severity;
                     });
    return std::move(report_);
  }

 private:
  void Add(DiagnosticSeverity severity, std::string code, std::string message,
           std::string rule = "", int line = 0) {
    Diagnostic d;
    d.severity = severity;
    d.code = std::move(code);
    d.message = std::move(message);
    d.program = program_.name;
    d.rule = std::move(rule);
    d.line = line;
    report_.diagnostics.push_back(std::move(d));
  }
  void AddError(std::string code, std::string message, std::string rule = "",
                int line = 0) {
    Add(DiagnosticSeverity::kError, std::move(code), std::move(message), std::move(rule),
        line);
  }
  void AddWarning(std::string code, std::string message, std::string rule = "",
                  int line = 0) {
    Add(DiagnosticSeverity::kWarning, std::move(code), std::move(message), std::move(rule),
        line);
  }
  void AddAdvisory(std::string code, std::string message, std::string rule = "",
                   int line = 0) {
    Add(DiagnosticSeverity::kAdvisory, std::move(code), std::move(message),
        std::move(rule), line);
  }

  // Merges regular and extern declarations; flags conflicting redeclarations. Identical
  // redeclarations are legal (modules may both declare a shared relation).
  void CollectDeclarations() {
    auto take = [this](const TableDef& def, bool is_extern) {
      auto it = decls_.find(def.name);
      if (it == decls_.end()) {
        decls_.emplace(def.name, def);
      } else if (!SameSchema(it->second, def)) {
        AddError("redeclaration-conflict",
                 "'" + def.name + "' declared twice with different schemas: " +
                     SchemaString(it->second) + " vs " + SchemaString(def));
      }
      if (is_extern) {
        extern_names_.insert(def.name);
      }
    };
    for (const TableDef& def : program_.tables) {
      take(def, /*is_extern=*/false);
    }
    for (const TableDef& def : program_.externs) {
      take(def, /*is_extern=*/true);
    }
    // Timers implicitly declare (and produce) their event; the parser materializes the
    // declaration, but AST-built programs may carry only the TimerDecl.
    for (const TimerDecl& timer : program_.timers) {
      if (decls_.count(timer.name) == 0) {
        TableDef def;
        def.name = timer.name;
        def.columns = {"Node"};
        def.kind = TableKind::kEvent;
        decls_.emplace(def.name, std::move(def));
      }
    }
  }

  void CheckDuplicateRules() {
    std::map<std::string, const Rule*> seen;
    for (const Rule& rule : program_.rules) {
      auto [it, added] = seen.emplace(rule.name, &rule);
      if (!added) {
        AddError("duplicate-rule",
                 "rule name defined twice (first at line " +
                     std::to_string(it->second->line) +
                     "); profiling and scheduling key rules by name",
                 rule.name, rule.line);
      }
    }
  }

  void CheckDuplicateTimers() {
    std::map<std::string, const TimerDecl*> seen;
    for (const TimerDecl& timer : program_.timers) {
      auto [it, added] = seen.emplace(timer.name, &timer);
      if (!added) {
        AddError("duplicate-timer",
                 "timer '" + timer.name + "' declared twice (the event would fire " +
                     "once per declaration)");
      }
    }
  }

  bool Known(const std::string& table) const {
    return decls_.count(table) > 0 || options_.external_tables.count(table) > 0;
  }
  // -1 when the schema is unknown (external table).
  int ArityOf(const std::string& table) const {
    auto it = decls_.find(table);
    return it == decls_.end() ? -1 : static_cast<int>(it->second.arity());
  }

  void CheckAtomRef(const std::string& table, size_t arity, const Rule& rule) {
    if (!Known(table)) {
      AddError("undeclared-table", "references undeclared relation '" + table + "'",
               rule.name, rule.line);
      return;
    }
    int want = ArityOf(table);
    if (want >= 0 && static_cast<size_t>(want) != arity) {
      AddError("arity-mismatch",
               "'" + table + "' used with " + std::to_string(arity) + " args, declared with " +
                   std::to_string(want),
               rule.name, rule.line);
    }
  }

  void CheckReferences() {
    for (const Rule& rule : program_.rules) {
      CheckAtomRef(rule.head.table, rule.head.args.size(), rule);
      for (const BodyTerm& term : rule.body) {
        if (term.kind == BodyTerm::Kind::kAtom) {
          CheckAtomRef(term.atom.table, term.atom.args.size(), rule);
        }
      }
    }
    for (const Fact& fact : program_.facts) {
      if (!Known(fact.table)) {
        AddError("undeclared-table",
                 "fact references undeclared relation '" + fact.table + "'");
        continue;
      }
      int want = ArityOf(fact.table);
      if (want >= 0 && static_cast<size_t>(want) != fact.tuple.size()) {
        AddError("arity-mismatch", "fact for '" + fact.table + "' has " +
                                       std::to_string(fact.tuple.size()) +
                                       " values, declared with " + std::to_string(want));
      }
    }
  }

  // Saturation over body terms, mirroring the planner's ordering pass: positive atoms bind
  // their variables; assignments bind their target once the right side is bound; conditions
  // and negated atoms need every (named) variable bound. Whatever cannot be scheduled is an
  // unbound term; head variables must end up in the bound set.
  void CheckBindings() {
    for (const Rule& rule : program_.rules) {
      std::set<std::string> bound;
      std::vector<bool> used(rule.body.size(), false);
      bool progressed = true;
      auto expr_bound = [&bound](const Expr& e) {
        std::set<std::string> vars;
        e.CollectVars(&vars);
        for (const std::string& v : vars) {
          if (bound.count(v) == 0) {
            return false;
          }
        }
        return true;
      };
      while (progressed) {
        progressed = false;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (used[i]) {
            continue;
          }
          const BodyTerm& term = rule.body[i];
          bool ready = false;
          switch (term.kind) {
            case BodyTerm::Kind::kAtom:
              if (!term.atom.negated) {
                ready = true;
                for (const Expr& arg : term.atom.args) {
                  arg.CollectVars(&bound);
                }
              } else {
                ready = true;
                for (const Expr& arg : term.atom.args) {
                  if (arg.is_var() && !IsAnonVar(arg.var) && bound.count(arg.var) == 0) {
                    ready = false;
                  }
                }
              }
              break;
            case BodyTerm::Kind::kAssign:
              if (expr_bound(term.assign.expr)) {
                ready = true;
                bound.insert(term.assign.var);
              }
              break;
            case BodyTerm::Kind::kCondition:
              ready = expr_bound(term.condition);
              break;
          }
          if (ready) {
            used[i] = true;
            progressed = true;
          }
        }
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (used[i]) {
          continue;
        }
        const BodyTerm& term = rule.body[i];
        if (term.kind == BodyTerm::Kind::kAtom) {
          AddError("unsafe-negation",
                   "negated atom '" + term.atom.ToString() +
                       "' has variables no positive term binds",
                   rule.name, rule.line);
        } else {
          AddError("unbound-condition",
                   "body term '" + term.ToString() + "' uses variables nothing binds",
                   rule.name, rule.line);
        }
      }
      for (const HeadArg& arg : rule.head.args) {
        std::set<std::string> vars;
        arg.expr.CollectVars(&vars);
        for (const std::string& v : vars) {
          if (bound.count(v) == 0) {
            AddError("unbound-head-var",
                     "head variable '" + v + "' is not bound by the body", rule.name,
                     rule.line);
          }
        }
      }
    }
  }

  // Same dependency graph as the planner: body table -> head table, weight 1 when the body
  // atom is negated or the head aggregates; @next and delete heads defer to the tick
  // boundary and impose no same-timestep edge. A weight-1 edge inside one SCC is a cycle no
  // stratum assignment can break.
  void CheckStratification() {
    std::map<std::string, std::set<std::string>> adj;
    std::map<std::pair<std::string, std::string>, int> weight;
    for (const Rule& rule : program_.rules) {
      adj[rule.head.table];
      for (const BodyTerm& term : rule.body) {
        if (term.kind != BodyTerm::Kind::kAtom) {
          continue;
        }
        adj[term.atom.table];
        if (rule.is_delete || rule.is_next) {
          continue;
        }
        int w = (term.atom.negated || rule.head.HasAggregate()) ? 1 : 0;
        adj[term.atom.table].insert(rule.head.table);
        auto key = std::make_pair(term.atom.table, rule.head.table);
        auto it = weight.find(key);
        if (it == weight.end()) {
          weight[key] = w;
        } else {
          it->second = std::max(it->second, w);
        }
      }
    }
    std::map<std::string, int> component = SccFinder(adj).Run();
    std::set<std::pair<std::string, std::string>> reported;
    for (const auto& [edge, w] : weight) {
      if (w > 0 && component[edge.first] == component[edge.second] &&
          reported.insert(edge).second) {
        AddError("unstratifiable",
                 "negation/aggregation cycle through '" + edge.first + "' and '" +
                     edge.second + "' (no @next deferral breaks it)");
      }
    }
  }

  // Every event needs a source: a rule head (local or @location), a timer, a fact, an
  // extern marking (arrives from the network / another program), or a declared external
  // input (host C++ enqueues it).
  void CheckProducers() {
    std::set<std::string> produced;
    for (const Rule& rule : program_.rules) {
      produced.insert(rule.head.table);
    }
    for (const TimerDecl& timer : program_.timers) {
      produced.insert(timer.name);
    }
    for (const Fact& fact : program_.facts) {
      produced.insert(fact.table);
    }
    for (const TableDef& def : program_.tables) {
      if (def.kind != TableKind::kEvent || produced.count(def.name) > 0 ||
          extern_names_.count(def.name) > 0 ||
          options_.external_inputs.count(def.name) > 0) {
        continue;
      }
      std::string msg = "event '" + def.name +
                        "' has no producing rule, timer, or external source (declare it "
                        "'extern event' if it arrives from outside this program)";
      if (options_.strict_events) {
        AddError("no-producer", std::move(msg));
      } else {
        AddWarning("no-producer", std::move(msg));
      }
    }
  }

  // Warning tier: a relation that rules or facts write but nothing reads. Heads sent with
  // an @location are protocol outputs (the reader is another node), watches and declared
  // external outputs are host-side readers.
  void CheckReaders() {
    if (!options_.warn_unread) {
      return;
    }
    std::set<std::string> written;
    std::set<std::string> consumed;
    for (const Rule& rule : program_.rules) {
      written.insert(rule.head.table);
      if (rule.head.has_location) {
        consumed.insert(rule.head.table);
      }
      for (const BodyTerm& term : rule.body) {
        if (term.kind == BodyTerm::Kind::kAtom) {
          consumed.insert(term.atom.table);
        }
      }
    }
    for (const Fact& fact : program_.facts) {
      written.insert(fact.table);
    }
    for (const std::string& watch : program_.watches) {
      consumed.insert(watch);
    }
    for (const TableDef& def : program_.tables) {
      if (written.count(def.name) == 0 || consumed.count(def.name) > 0 ||
          extern_names_.count(def.name) > 0 ||
          options_.external_outputs.count(def.name) > 0) {
        continue;
      }
      AddWarning("unread-table",
                 "'" + def.name + "' is written but never read, watched, or sent");
    }
  }

  // Advisory tier: mirrors the planner's greedy join ordering (driver = first positive
  // atom, then most-bound-first) and flags every probe whose column set differs from the
  // probed table's effective key — the engine answers those probes from a lazily built
  // secondary index, which churn-heavy workloads repeatedly invalidate. One advisory per
  // (table, column set), attributed to the first rule that wants it.
  void AdviseIndexes() {
    std::set<std::pair<std::string, std::vector<size_t>>> seen;
    for (const Rule& rule : program_.rules) {
      std::vector<const Atom*> positives;
      for (const BodyTerm& term : rule.body) {
        if (term.kind == BodyTerm::Kind::kAtom && !term.atom.negated) {
          positives.push_back(&term.atom);
        }
      }
      if (positives.size() < 2) {
        continue;
      }
      std::set<std::string> bound;
      auto bind_atom = [&bound](const Atom& atom) {
        for (const Expr& arg : atom.args) {
          arg.CollectVars(&bound);
        }
      };
      auto probe_cols_of = [&bound](const Atom& atom) {
        std::vector<size_t> cols;
        for (size_t i = 0; i < atom.args.size(); ++i) {
          const Expr& arg = atom.args[i];
          if (arg.is_const() ||
              (arg.is_var() && !IsAnonVar(arg.var) && bound.count(arg.var) > 0)) {
            cols.push_back(i);
          }
        }
        return cols;
      };
      bind_atom(*positives[0]);
      std::vector<bool> taken(positives.size(), false);
      taken[0] = true;
      for (size_t picks = 1; picks < positives.size(); ++picks) {
        size_t best = 0;
        size_t best_bound = 0;
        bool have = false;
        for (size_t i = 1; i < positives.size(); ++i) {
          if (taken[i]) {
            continue;
          }
          size_t n = probe_cols_of(*positives[i]).size();
          if (!have || n > best_bound) {
            have = true;
            best = i;
            best_bound = n;
          }
        }
        taken[best] = true;
        const Atom& atom = *positives[best];
        std::vector<size_t> cols = probe_cols_of(atom);
        bind_atom(atom);
        auto decl = decls_.find(atom.table);
        if (cols.empty() || decl == decls_.end()) {
          continue;  // unconstrained scan, or external table with unknown key
        }
        if (cols == decl->second.EffectiveKey()) {
          continue;  // key-shaped probe; the index mirrors the primary key
        }
        if (!seen.insert({atom.table, cols}).second) {
          continue;
        }
        std::vector<std::string> pattern;
        std::set<size_t> colset(cols.begin(), cols.end());
        for (size_t i = 0; i < atom.args.size(); ++i) {
          pattern.push_back(colset.count(i) > 0 ? atom.args[i].ToString() : "_");
        }
        AddAdvisory("wants-index",
                    "rule " + rule.name + " wants an index on " + atom.table + "(" +
                        StrJoin(pattern, ",") + "); declare keys(" +
                        StrJoin([&cols] {
                          std::vector<std::string> ks;
                          for (size_t c : cols) {
                            ks.push_back(std::to_string(c));
                          }
                          return ks;
                        }(), ", ") +
                        ") or enable the cost-based optimizer's index warming",
                    rule.name, rule.line);
      }
    }
  }

  // Advisory tier: rules whose bodies start with the same join prefix (>= 2 leading
  // positive atoms, identical modulo variable renaming) re-evaluate that join once per
  // rule; the cost-based optimizer's common-subplan sharing evaluates it once per round.
  void AdviseSharedPrefixes() {
    struct Cand {
      const Rule* rule;
      std::vector<std::string> tokens;
    };
    std::vector<Cand> cands;
    for (const Rule& rule : program_.rules) {
      std::map<std::string, int> canon;
      std::vector<std::string> tokens;
      for (const BodyTerm& term : rule.body) {
        if (term.kind != BodyTerm::Kind::kAtom || term.atom.negated) {
          break;
        }
        std::vector<std::string> args;
        for (const Expr& arg : term.atom.args) {
          if (!arg.is_var()) {
            args.push_back("=" + arg.ToString());
            continue;
          }
          auto [it, added] = canon.emplace(arg.var, static_cast<int>(canon.size()));
          args.push_back("v" + std::to_string(it->second));
        }
        tokens.push_back(term.atom.table + "(" + StrJoin(args, ",") + ")");
      }
      if (tokens.size() >= 2) {
        cands.push_back({&rule, std::move(tokens)});
      }
    }
    std::map<std::string, std::vector<size_t>> by_key;
    for (size_t i = 0; i < cands.size(); ++i) {
      by_key[cands[i].tokens[0] + " & " + cands[i].tokens[1]].push_back(i);
    }
    for (const auto& [key, members] : by_key) {
      if (members.size() < 2) {
        continue;
      }
      size_t common = 2;
      while (true) {
        const Cand& first = cands[members[0]];
        if (first.tokens.size() <= common) {
          break;
        }
        bool all = true;
        for (size_t m : members) {
          if (cands[m].tokens.size() <= common ||
              cands[m].tokens[common] != first.tokens[common]) {
            all = false;
            break;
          }
        }
        if (!all) {
          break;
        }
        ++common;
      }
      std::vector<std::string> names;
      for (size_t m : members) {
        names.push_back(cands[m].rule->name);
      }
      AddAdvisory("shared-prefix",
                  "rules " + StrJoin(names, "/") + " share a " + std::to_string(common) +
                      "-atom prefix [" + key +
                      "]; the cost-based optimizer evaluates it once per round");
    }
  }

  const Program& program_;
  const AnalyzerOptions& options_;
  AnalyzerReport report_;
  std::map<std::string, TableDef> decls_;
  std::set<std::string> extern_names_;
};

}  // namespace

std::string Diagnostic::ToString() const {
  std::string out = severity == DiagnosticSeverity::kError     ? "error["
                    : severity == DiagnosticSeverity::kWarning ? "warning["
                                                               : "advisory[";
  out += code + "] " + program;
  if (!rule.empty()) {
    out += ":" + rule;
  }
  if (line > 0) {
    out += " (line " + std::to_string(line) + ")";
  }
  out += ": " + message;
  return out;
}

bool AnalyzerReport::ok() const { return num_errors() == 0; }

size_t AnalyzerReport::num_errors() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == DiagnosticSeverity::kError ? 1 : 0;
  }
  return n;
}

size_t AnalyzerReport::num_warnings() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == DiagnosticSeverity::kWarning ? 1 : 0;
  }
  return n;
}

size_t AnalyzerReport::num_advisories() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    n += d.severity == DiagnosticSeverity::kAdvisory ? 1 : 0;
  }
  return n;
}

std::string AnalyzerReport::ToString() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString() + "\n";
  }
  return out;
}

AnalyzerReport AnalyzeProgram(const Program& program, const AnalyzerOptions& options) {
  return Analyzer(program, options).Run();
}

}  // namespace boom
