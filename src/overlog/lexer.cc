#include "src/overlog/lexer.h"

#include <cctype>
#include <cstdlib>

namespace boom {

std::string Token::Describe() const {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier '" + text + "'";
    case TokenKind::kInt:
    case TokenKind::kDouble:
      return "number '" + text + "'";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kEof:
      return "end of input";
    default:
      return "'" + text + "'";
  }
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (true) {
      BOOM_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) {
        out.push_back(Make(TokenKind::kEof, ""));
        return out;
      }
      Result<Token> tok = Next();
      if (!tok.ok()) {
        return tok.status();
      }
      out.push_back(std::move(tok).value());
    }
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  Token Make(TokenKind kind, std::string text) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_;
    t.column = col_;
    return t;
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) {
          Advance();
        }
        if (AtEnd()) {
          return InvalidArgument("unterminated block comment at line " + std::to_string(line_));
        }
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::Ok();
  }

  Result<Token> Next() {
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c))) {
      return LexIdent();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber();
    }
    if (c == '"') {
      return LexString();
    }
    if (c == '_') {
      // `_foo` is an identifier; bare `_` is the wildcard.
      if (std::isalnum(static_cast<unsigned char>(Peek(1))) || Peek(1) == '_') {
        return LexIdent();
      }
      Advance();
      return Make(TokenKind::kUnderscore, "_");
    }
    Advance();
    switch (c) {
      case '(':
        return Make(TokenKind::kLParen, "(");
      case ')':
        return Make(TokenKind::kRParen, ")");
      case '[':
        return Make(TokenKind::kLBracket, "[");
      case ']':
        return Make(TokenKind::kRBracket, "]");
      case ',':
        return Make(TokenKind::kComma, ",");
      case ';':
        return Make(TokenKind::kSemi, ";");
      case '@':
        return Make(TokenKind::kAt, "@");
      case '+':
        return Make(TokenKind::kPlus, "+");
      case '-':
        return Make(TokenKind::kMinus, "-");
      case '*':
        return Make(TokenKind::kStar, "*");
      case '/':
        return Make(TokenKind::kSlash, "/");
      case '%':
        return Make(TokenKind::kPercent, "%");
      case ':':
        if (Peek() == '-') {
          Advance();
          return Make(TokenKind::kTurnstile, ":-");
        }
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kAssign, ":=");
        }
        return InvalidArgument("stray ':' at line " + std::to_string(line_));
      case '=':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kEq, "==");
        }
        return Make(TokenKind::kEquals, "=");
      case '!':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kNe, "!=");
        }
        return Make(TokenKind::kBang, "!");
      case '<':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kLe, "<=");
        }
        return Make(TokenKind::kLt, "<");
      case '>':
        if (Peek() == '=') {
          Advance();
          return Make(TokenKind::kGe, ">=");
        }
        return Make(TokenKind::kGt, ">");
      case '&':
        if (Peek() == '&') {
          Advance();
          return Make(TokenKind::kAnd, "&&");
        }
        return InvalidArgument("stray '&' at line " + std::to_string(line_));
      case '|':
        if (Peek() == '|') {
          Advance();
          return Make(TokenKind::kOr, "||");
        }
        return InvalidArgument("stray '|' at line " + std::to_string(line_));
      default:
        return InvalidArgument(std::string("unexpected character '") + c + "' at line " +
                               std::to_string(line_));
    }
  }

  Result<Token> LexIdent() {
    std::string text;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) || Peek() == '_')) {
      text.push_back(Advance());
    }
    return Make(TokenKind::kIdent, std::move(text));
  }

  Result<Token> LexNumber() {
    std::string text;
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      is_double = true;
      text.push_back(Advance());
      if (Peek() == '+' || Peek() == '-') {
        text.push_back(Advance());
      }
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    Token t = Make(is_double ? TokenKind::kDouble : TokenKind::kInt, text);
    if (is_double) {
      t.literal = Value(std::strtod(text.c_str(), nullptr));
    } else {
      t.literal = Value(static_cast<int64_t>(std::strtoll(text.c_str(), nullptr, 10)));
    }
    return t;
  }

  Result<Token> LexString() {
    Advance();  // opening quote
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\') {
        if (AtEnd()) {
          break;
        }
        char esc = Advance();
        switch (esc) {
          case 'n':
            text.push_back('\n');
            break;
          case 't':
            text.push_back('\t');
            break;
          case '\\':
            text.push_back('\\');
            break;
          case '"':
            text.push_back('"');
            break;
          default:
            text.push_back(esc);
        }
      } else {
        text.push_back(c);
      }
    }
    if (AtEnd()) {
      return InvalidArgument("unterminated string literal at line " + std::to_string(line_));
    }
    Advance();  // closing quote
    Token t = Make(TokenKind::kString, text);
    t.literal = Value(text);
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view source) { return Lexer(source).Run(); }

}  // namespace boom
