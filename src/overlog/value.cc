#include "src/overlog/value.h"

#include <atomic>
#include <cmath>
#include <functional>
#include <mutex>
#include <sstream>
#include <unordered_map>

namespace boom {

namespace {

// Per-process string interner, sharded by hash so parallel fixpoint workers missing their
// thread-local caches at the same instant contend on 1/16th of a lock each instead of one
// global mutex. Entries are weakly held: the last Value handle's destructor removes the
// entry (via the shared_ptr deleter), so long-lived engines do not accumulate strings for
// tuples that have been retracted. (Exception: each thread's fast-path cache in
// InternString pins up to 256 recently interned strings — see InvalidateInternCaches.) The
// instance is intentionally leaked so Values with static storage duration can run their
// deleters during process exit.
class InternTable {
 public:
  static InternTable& Instance() {
    static InternTable* table = new InternTable;
    return *table;
  }

  InternedStringPtr Intern(std::string s, size_t hash) {
    Shard& shard = ShardFor(hash);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(s);
    if (it != shard.map.end()) {
      if (InternedStringPtr live = it->second.lock()) {
        return live;
      }
    }
    auto* raw = new InternedString;
    raw->text = std::move(s);
    raw->hash = hash;  // precomputed by InternString (std::hash<std::string>)
    InternedStringPtr handle(raw, [](const InternedString* p) { Instance().Remove(p); });
    if (it != shard.map.end()) {
      it->second = handle;  // revive an entry whose deleter has not run yet
    } else {
      shard.map.emplace(raw->text, handle);
    }
    return handle;
  }

  size_t LiveCount() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [text, weak] : shard.map) {
        if (!weak.expired()) {
          ++n;
        }
      }
    }
    return n;
  }

 private:
  static constexpr size_t kShards = 16;  // power of two

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::weak_ptr<const InternedString>> map;
  };

  Shard& ShardFor(size_t hash) { return shards_[hash & (kShards - 1)]; }

  void Remove(const InternedString* p) {
    {
      Shard& shard = ShardFor(p->hash);
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(p->text);
      // A concurrent Intern may have replaced the entry with a fresh live handle between
      // this handle's refcount hitting zero and us taking the lock; leave that one alone.
      if (it != shard.map.end() && it->second.expired()) {
        shard.map.erase(it);
      }
    }
    delete p;
  }

  Shard shards_[kShards];
};

// Bumped by InvalidateInternCaches; every thread compares its cache's generation against
// this on the InternString fast path (one relaxed load) and drops its pins on mismatch.
std::atomic<uint64_t> g_intern_cache_gen{0};

// The per-thread fast-path cache (defined outside InternString so the flush helper can
// reach it).
struct InternCacheEntry {
  size_t hash = 0;
  InternedStringPtr ptr;
};
constexpr size_t kInternCacheSlots = 256;  // power of two
struct InternCache {
  uint64_t generation = 0;
  InternCacheEntry slots[kInternCacheSlots];
};
thread_local InternCache g_intern_cache;

int KindRank(ValueKind k) {
  switch (k) {
    case ValueKind::kNil:
      return 0;
    case ValueKind::kBool:
      return 1;
    case ValueKind::kInt:
    case ValueKind::kDouble:
      return 2;  // numerics compare with each other
    case ValueKind::kString:
      return 3;
    case ValueKind::kList:
      return 4;
  }
  return 5;
}

}  // namespace

InternedStringPtr InternString(std::string s) {
  // Lock-free fast path: a small direct-mapped per-thread cache of recent interns. Workloads
  // repeat the same literals (table names, commands, payload tags), so most interns hit here
  // and never touch the sharded table.
  InternCache& cache = g_intern_cache;
  uint64_t gen = g_intern_cache_gen.load(std::memory_order_relaxed);
  if (cache.generation != gen) {
    // An invalidation happened since this thread last interned: drop every pin.
    for (InternCacheEntry& e : cache.slots) {
      e.ptr.reset();
    }
    cache.generation = gen;
  }
  size_t h = std::hash<std::string>{}(s);
  InternCacheEntry& entry = cache.slots[h & (kInternCacheSlots - 1)];
  if (entry.ptr != nullptr && entry.hash == h && entry.ptr->text == s) {
    return entry.ptr;
  }
  InternedStringPtr p = InternTable::Instance().Intern(std::move(s), h);
  entry.hash = h;
  entry.ptr = p;
  return p;
}

size_t InternedStringCount() { return InternTable::Instance().LiveCount(); }

void InvalidateInternCaches() {
  g_intern_cache_gen.fetch_add(1, std::memory_order_relaxed);
}

void FlushInternCacheForCurrentThread() {
  for (InternCacheEntry& e : g_intern_cache.slots) {
    e.ptr.reset();
  }
}

double Value::ToDouble() const {
  switch (kind()) {
    case ValueKind::kInt:
      return static_cast<double>(as_int());
    case ValueKind::kDouble:
      return as_double();
    case ValueKind::kBool:
      return as_bool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

bool Value::Truthy() const {
  switch (kind()) {
    case ValueKind::kNil:
      return false;
    case ValueKind::kBool:
      return as_bool();
    case ValueKind::kInt:
      return as_int() != 0;
    case ValueKind::kDouble:
      return as_double() != 0.0;
    case ValueKind::kString:
      return !as_string().empty();
    case ValueKind::kList:
      return !as_list().empty();
  }
  return false;
}

bool Value::operator==(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      return as_int() == other.as_int();
    }
    return ToDouble() == other.ToDouble();
  }
  if (kind() != other.kind()) {
    return false;
  }
  switch (kind()) {
    case ValueKind::kNil:
      return true;
    case ValueKind::kBool:
      return as_bool() == other.as_bool();
    case ValueKind::kString:
      // Interning guarantees one live handle per distinct string.
      return interned() == other.interned();
    case ValueKind::kList: {
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      if (a.size() != b.size()) {
        return false;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        if (!(a[i] == b[i])) {
          return false;
        }
      }
      return true;
    }
    default:
      return false;
  }
}

bool Value::operator<(const Value& other) const {
  int ra = KindRank(kind());
  int rb = KindRank(other.kind());
  if (ra != rb) {
    return ra < rb;
  }
  switch (kind()) {
    case ValueKind::kNil:
      return false;
    case ValueKind::kBool:
      return !as_bool() && other.as_bool();
    case ValueKind::kInt:
    case ValueKind::kDouble:
      if (is_int() && other.is_int()) {
        return as_int() < other.as_int();
      }
      return ToDouble() < other.ToDouble();
    case ValueKind::kString:
      if (interned() == other.interned()) {
        return false;
      }
      return as_string() < other.as_string();
    case ValueKind::kList: {
      const ValueList& a = as_list();
      const ValueList& b = other.as_list();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        if (a[i] < b[i]) {
          return true;
        }
        if (b[i] < a[i]) {
          return false;
        }
      }
      return a.size() < b.size();
    }
  }
  return false;
}

size_t Value::Hash() const {
  switch (kind()) {
    case ValueKind::kNil:
      return 0x9e3779b9;
    case ValueKind::kBool:
      return as_bool() ? 0x517cc1b7 : 0x27220a95;
    case ValueKind::kInt:
      return std::hash<int64_t>{}(as_int());
    case ValueKind::kDouble: {
      double d = as_double();
      // Hash integral doubles like their int counterpart so 1 == 1.0 implies equal hashes.
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>{}(static_cast<int64_t>(d));
      }
      return std::hash<double>{}(d);
    }
    case ValueKind::kString:
      return interned()->hash;  // precomputed at intern time
    case ValueKind::kList: {
      size_t h = 0xabcdef01;
      for (const Value& v : as_list()) {
        h = HashCombine(h, v.Hash());
      }
      return h;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case ValueKind::kNil:
      return "nil";
    case ValueKind::kBool:
      return as_bool() ? "true" : "false";
    case ValueKind::kInt:
      return std::to_string(as_int());
    case ValueKind::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueKind::kString:
      return as_string();
    case ValueKind::kList: {
      std::string out = "[";
      const ValueList& list = as_list();
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        if (list[i].is_string()) {
          out += "\"" + list[i].as_string() + "\"";
        } else {
          out += list[i].ToString();
        }
      }
      out += "]";
      return out;
    }
  }
  return "?";
}

}  // namespace boom
