// First-class Overlog modules and the ProgramBuilder that composes them.
//
// A Module is a named, parameterized rule set: Overlog text (declarations, facts, timers,
// watches, rules — everything except the `program` header) plus a typed parameter list.
// Parameters appear in the text as lowercase identifiers (`bottomk<rep_factor, Pair>`,
// `timer dn_check(fd_check_ms);`, `Deficit := rep_factor - Have`) and are bound to concrete
// Values when the module is added to a builder — the typed replacement for the old
// `$TOKEN` string substitution.
//
// ProgramBuilder concatenates modules, in order, into one Program:
//   - declarations merge; identical redeclarations collapse, conflicting ones are errors
//   - `extern` declarations are satisfied by a real declaration from any module (or survive
//     into Program::externs for the engine to verify at install time)
//   - rule and timer names must be unique across all modules
//   - Build() runs the strict analyzer pass and fails on any error diagnostic
//
// Rule order in the built Program is exactly module-addition order — tick-level evaluation
// order is observable (the dirty-rule scheduler keys on program order), so composition must
// not reshuffle rules.
//
//   ProgramBuilder b("boommr_jt");
//   RETURN_IF_ERROR(b.Add(JtCoreModule(), {...}));
//   RETURN_IF_ERROR(b.Add(JtFifoPolicyModule(), {}));        // <- policy is one Add() swap
//   RETURN_IF_ERROR(b.Add(JtExecModule(), {{"tt_check_ms", 1000.0}, ...}));
//   Result<Program> p = b.Build();

#ifndef SRC_OVERLOG_MODULE_H_
#define SRC_OVERLOG_MODULE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/analyzer.h"
#include "src/overlog/ast.h"
#include "src/overlog/value.h"

namespace boom {

// One typed module parameter. When `required` is false, `def` supplies the default.
struct ModuleParam {
  std::string name;
  ValueKind kind = ValueKind::kInt;
  bool required = true;
  Value def;

  static ModuleParam Required(std::string name, ValueKind kind) {
    ModuleParam p;
    p.name = std::move(name);
    p.kind = kind;
    return p;
  }
  static ModuleParam Optional(std::string name, Value def) {
    ModuleParam p;
    p.name = std::move(name);
    p.kind = def.kind();
    p.required = false;
    p.def = std::move(def);
    return p;
  }
};

struct Module {
  std::string name;    // diagnostic label, e.g. "nn_failure_detector"
  std::string source;  // Overlog text WITHOUT a `program ...;` header
  std::vector<ModuleParam> params;
};

// Bindings for a module's parameters, by name.
using ParamBindings = std::map<std::string, Value>;

class ProgramBuilder {
 public:
  // `program_name` names the final Program. An empty name adopts the name of the first
  // fragment added with AddProgramText (olgrun/olglint compose whole files this way).
  explicit ProgramBuilder(std::string program_name);

  // Tables/events declared by programs already installed on the target engine. They satisfy
  // name-resolution in module text and are passed to the analyzer as external (arity
  // unchecked here; the engine verifies any matching `extern` schema at install time).
  ProgramBuilder& WithExternalTables(std::set<std::string> tables);
  // Events the host enqueues from C++ — forwarded to the analyzer's no-producer check.
  ProgramBuilder& WithExternalInputs(std::set<std::string> events);
  // Relations the host reads from C++ — forwarded to the analyzer's unread-table check.
  ProgramBuilder& WithExternalOutputs(std::set<std::string> tables);

  // Parses `module.source` with `bindings` resolved against `module.params` and merges the
  // result. Rejects unknown binding names, missing required params, and kind mismatches
  // (an int binding coerces to a double param; nothing else coerces).
  Status Add(const Module& module, const ParamBindings& bindings = {});

  // Parses a complete program text (with `program ...;` header) and merges it. The
  // fragment's own program name is ignored unless this builder was constructed with an
  // empty name and this is the first fragment.
  Status AddProgramText(std::string_view source, const std::string& label = "<text>");

  // Appends a fact (table must be declared by some module, checked at Build).
  ProgramBuilder& AddFact(std::string table, Tuple tuple);
  ProgramBuilder& AddWatch(std::string table);

  // Runs the strict analyzer; returns the composed Program or an error listing every
  // diagnostic. `report_out`, when non-null, receives the full report (incl. warnings).
  Result<Program> Build(AnalyzerReport* report_out = nullptr) const;

  // The analyzer options Build() uses — exposed so tools (olglint) can tweak strictness.
  AnalyzerOptions& analyzer_options() { return analyzer_options_; }

 private:
  Status Merge(Program fragment, const std::string& label);

  Program program_;
  AnalyzerOptions analyzer_options_;
  std::set<std::string> declared_;  // names declared (non-extern) so far
  std::map<std::string, std::string> rule_sources_;   // rule name -> module label
  std::map<std::string, std::string> timer_sources_;  // timer name -> module label
};

}  // namespace boom

#endif  // SRC_OVERLOG_MODULE_H_
