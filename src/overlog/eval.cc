#include "src/overlog/eval.h"

#include <algorithm>
#include <map>

#include "src/base/logging.h"

namespace boom {

namespace {

// Depth-indexed scratch pool for kCall argument vectors: every rule body evaluation calls
// EvalExpr, so the per-call `std::vector<Value> args` allocation was pure hot-path churn.
// One buffer per call-nesting depth; unique_ptr keeps buffer addresses stable while the
// pool itself grows under a deeper recursion.
std::vector<Value>& CallArgsScratch(size_t depth) {
  thread_local std::vector<std::unique_ptr<std::vector<Value>>> pool;
  while (pool.size() <= depth) {
    pool.push_back(std::make_unique<std::vector<Value>>());
  }
  pool[depth]->clear();
  return *pool[depth];
}

Result<Value> EvalExprAtDepth(const Expr& expr, const std::vector<Value>& slots,
                              const std::unordered_map<std::string, int>& slot_of,
                              const BuiltinRegistry& builtins, const EvalContext& ctx,
                              size_t depth) {
  switch (expr.kind) {
    case ExprKind::kConst:
      return expr.constant;
    case ExprKind::kVar: {
      if (expr.slot >= 0) {  // planner-resolved fast path
        return slots[static_cast<size_t>(expr.slot)];
      }
      auto it = slot_of.find(expr.var);
      if (it == slot_of.end()) {
        return Internal("unbound variable " + expr.var);
      }
      return slots[static_cast<size_t>(it->second)];
    }
    case ExprKind::kCall: {
      std::vector<Value>& args = CallArgsScratch(depth);
      args.reserve(expr.args.size());
      for (const Expr& a : expr.args) {
        Result<Value> v = EvalExprAtDepth(a, slots, slot_of, builtins, ctx, depth + 1);
        if (!v.ok()) {
          return v;
        }
        args.push_back(std::move(v).value());
      }
      return builtins.Call(ctx, expr.fn, args);
    }
  }
  return Internal("bad expression kind");
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const std::vector<Value>& slots,
                       const std::unordered_map<std::string, int>& slot_of,
                       const BuiltinRegistry& builtins, const EvalContext& ctx) {
  return EvalExprAtDepth(expr, slots, slot_of, builtins, ctx, 0);
}

void Evaluator::RecordError(const Status& status) {
  if (errors_.size() < kMaxErrors) {
    errors_.push_back(status.ToString());
  }
}

bool Evaluator::BindAtomRow(const CompiledAtom& atom, const Tuple& row,
                            std::vector<Value>* slots) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const CompiledArg& arg = atom.args[i];
    if (arg.is_const) {
      if (!(row[i] == arg.constant)) {
        return false;
      }
    } else if (arg.first_binding) {
      (*slots)[static_cast<size_t>(arg.slot)] = row[i];
    } else {
      if (!(row[i] == (*slots)[static_cast<size_t>(arg.slot)])) {
        return false;
      }
    }
  }
  return true;
}

template <typename EmitFn>
void Evaluator::JoinSteps(const CompiledRule& rule, const CompiledVariant& variant,
                          size_t step_idx, std::vector<Value>* slots, EmitFn&& emit) {
  if (step_idx == variant.steps.size()) {
    emit(*slots);
    return;
  }
  const CompiledStep& step = variant.steps[step_idx];
  switch (step.kind) {
    case BodyTerm::Kind::kCondition: {
      Result<Value> v = EvalExpr(step.condition, *slots, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      if (v->Truthy()) {
        JoinSteps(rule, variant, step_idx + 1, slots, emit);
      }
      return;
    }
    case BodyTerm::Kind::kAssign: {
      Result<Value> v = EvalExpr(step.assign_expr, *slots, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      (*slots)[static_cast<size_t>(step.assign_slot)] = std::move(v).value();
      JoinSteps(rule, variant, step_idx + 1, slots, emit);
      return;
    }
    case BodyTerm::Kind::kAtom: {
      const CompiledAtom& atom = step.atom;
      Table* table = atom.table_ptr != nullptr ? atom.table_ptr : catalog_->Find(atom.table);
      BOOM_CHECK(table != nullptr) << "planner admitted unknown table " << atom.table;
      // Build the probe key from const and pre-bound argument positions in a per-depth
      // scratch buffer; the table is probed by view (precomputed hash, no Tuple built).
      std::vector<Value>& probe_vals = ProbeScratch(step_idx);
      for (size_t col : atom.probe_cols) {
        const CompiledArg& arg = atom.args[col];
        if (arg.is_const) {
          probe_vals.push_back(arg.constant);
        } else {
          probe_vals.push_back((*slots)[static_cast<size_t>(arg.slot)]);
        }
      }
      const std::vector<const Tuple*>& rows =
          table->Probe(atom.probe_cols, TupleView::Of(probe_vals.data(), probe_vals.size()));
#ifndef NDEBUG
      // Derivations are buffered until the rule finishes, so nothing may mutate the probed
      // table while we iterate its rows; debug builds enforce that here.
      const uint64_t probe_gen = table->probe_generation();
#endif
      if (atom.negated) {
        if (rows.empty()) {
          JoinSteps(rule, variant, step_idx + 1, slots, emit);
        }
        return;
      }
      for (const Tuple* row : rows) {
        if (BindAtomRow(atom, *row, slots)) {
          JoinSteps(rule, variant, step_idx + 1, slots, emit);
        }
      }
#ifndef NDEBUG
      table->AssertProbeFresh(probe_gen);
#endif
      return;
    }
  }
}

void Evaluator::EmitHead(const CompiledRule& rule, const std::vector<Value>& slots,
                         std::vector<Derivation>* out) {
  std::vector<Value>& vals = head_scratch_;
  vals.clear();
  vals.reserve(rule.head_args.size());
  for (const CompiledHeadArg& arg : rule.head_args) {
    Result<Value> v = EvalExpr(arg.expr, slots, rule.slot_of, *builtins_, *ctx_);
    if (!v.ok()) {
      RecordError(v.status());
      return;
    }
    vals.push_back(std::move(v).value());
  }
  Derivation d;
  d.kind = rule.is_delete ? Derivation::Kind::kDelete : Derivation::Kind::kInsert;
  d.next = rule.is_next;
  d.table = rule.head_table;
  if (rule.head_has_location) {
    if (!vals[0].is_string()) {
      RecordError(InvalidArgument("rule " + rule.name + ": @location must be a string, got " +
                                  vals[0].ToString()));
      return;
    }
    if (vals[0].as_string() != ctx_->local_address) {
      d.remote = true;
      d.dest = vals[0].as_string();
    }
  }
  d.tuple = Tuple(vals.data(), vals.size());  // copy out of the scratch; Values are cheap
  out->push_back(std::move(d));
}

void Evaluator::EvalFromRows(const CompiledRule& rule, const CompiledVariant& variant,
                             const std::vector<Tuple>& driver_rows,
                             std::vector<Derivation>* out) {
  EnsureProbeDepth(variant.steps.size());
  // Reused scratch: unbound slots are never read (planner safety guarantees bound-before-
  // use), so resetting to nil is only for debuggability, not correctness.
  std::vector<Value>& slots = slots_scratch_;
  slots.assign(static_cast<size_t>(rule.num_slots), Value());
  for (const Tuple& row : driver_rows) {
    if (!BindAtomRow(variant.driver, row, &slots)) {
      continue;
    }
    JoinSteps(rule, variant, 0, &slots,
              [this, &rule, out](const std::vector<Value>& s) { EmitHead(rule, s, out); });
  }
}

void Evaluator::EvalPrefix(const SharedPrefixGroup& group,
                           const std::vector<Tuple>& driver_rows,
                           std::vector<std::vector<Value>>* bindings) {
  // The canonical prefix holds only atoms (no conditions/assignments), so JoinSteps never
  // consults the rule's slot_of map; an empty rule satisfies the interface.
  static const CompiledRule kPrefixRule;
  const CompiledVariant& variant = group.canon;
  EnsureProbeDepth(variant.steps.size());
  std::vector<Value>& slots = slots_scratch_;
  slots.assign(static_cast<size_t>(group.canon_num_slots), Value());
  for (const Tuple& row : driver_rows) {
    if (!BindAtomRow(variant.driver, row, &slots)) {
      continue;
    }
    JoinSteps(kPrefixRule, variant, 0, &slots,
              [bindings](const std::vector<Value>& s) { bindings->push_back(s); });
  }
}

void Evaluator::EvalFromPrefixBindings(const CompiledRule& rule,
                                       const CompiledVariant& variant, size_t prefix_steps,
                                       const std::vector<int>& slot_map,
                                       const std::vector<std::vector<Value>>& bindings,
                                       std::vector<Derivation>* out) {
  EnsureProbeDepth(variant.steps.size());
  std::vector<Value>& slots = slots_scratch_;
  slots.assign(static_cast<size_t>(rule.num_slots), Value());
  for (const std::vector<Value>& binding : bindings) {
    for (size_t c = 0; c < slot_map.size(); ++c) {
      slots[static_cast<size_t>(slot_map[c])] = binding[c];
    }
    JoinSteps(rule, variant, prefix_steps, &slots,
              [this, &rule, out](const std::vector<Value>& s) { EmitHead(rule, s, out); });
  }
}

void Evaluator::EvalFull(const CompiledRule& rule, std::vector<Derivation>* out) {
  const CompiledVariant& variant = rule.full_variant;
  if (variant.driver_table.empty()) {
    EnsureProbeDepth(variant.steps.size());
    std::vector<Value>& slots = slots_scratch_;
    slots.assign(static_cast<size_t>(rule.num_slots), Value());
    JoinSteps(rule, variant, 0, &slots,
              [this, &rule, out](const std::vector<Value>& s) { EmitHead(rule, s, out); });
    return;
  }
  Table* driver = catalog_->Find(variant.driver_table);
  BOOM_CHECK(driver != nullptr);
  std::vector<Tuple> rows = driver->Rows();
  EvalFromRows(rule, variant, rows, out);
}

void Evaluator::EvalAggBindings(const CompiledRule& rule,
                                const std::vector<Tuple>& driver_rows,
                                std::vector<std::pair<Tuple, std::vector<Value>>>* out) {
  const CompiledVariant& variant = rule.full_variant;
  std::vector<size_t> agg_positions;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (rule.head_args[i].agg != AggKind::kNone) {
      agg_positions.push_back(i);
    }
  }
  EnsureProbeDepth(variant.steps.size());
  std::vector<Value>& slots = slots_scratch_;
  slots.assign(static_cast<size_t>(rule.num_slots), Value());
  auto emit = [&](const std::vector<Value>& bound) {
    std::vector<Value> key_vals;
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      if (rule.head_args[i].agg != AggKind::kNone) {
        continue;
      }
      Result<Value> v = EvalExpr(rule.head_args[i].expr, bound, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      key_vals.push_back(std::move(v).value());
    }
    std::vector<Value> inputs;
    inputs.reserve(agg_positions.size());
    for (size_t pos : agg_positions) {
      Result<Value> v =
          EvalExpr(rule.head_args[pos].expr, bound, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      inputs.push_back(std::move(v).value());
    }
    out->emplace_back(Tuple(std::move(key_vals)), std::move(inputs));
  };
  for (const Tuple& row : driver_rows) {
    if (!BindAtomRow(variant.driver, row, &slots)) {
      continue;
    }
    JoinSteps(rule, variant, 0, &slots, emit);
  }
}

void Evaluator::EvalAggregate(const CompiledRule& rule, std::vector<Tuple>* head_rows) {
  const CompiledVariant& variant = rule.full_variant;

  // Positions of aggregate vs plain head args.
  std::vector<size_t> agg_positions;
  for (size_t i = 0; i < rule.head_args.size(); ++i) {
    if (rule.head_args[i].agg != AggKind::kNone) {
      agg_positions.push_back(i);
    }
  }

  // group key -> accumulated agg inputs; dedup on full binding fingerprints. With a single
  // positive atom, driver rows are already distinct, so no dedup is needed.
  std::map<Tuple, AggGroup> groups;
  std::unordered_map<size_t, std::vector<Tuple>> seen_fingerprints;  // hash -> tuples
  const bool need_dedup = !rule.single_positive_atom;

  auto emit = [&](const std::vector<Value>& slots) {
    if (need_dedup) {
      // Fingerprint over all slots the planner guarantees bound.
      std::vector<Value> fp_vals;
      fp_vals.reserve(variant.bound_slots.size());
      for (int s : variant.bound_slots) {
        fp_vals.push_back(slots[static_cast<size_t>(s)]);
      }
      Tuple fingerprint(std::move(fp_vals));
      std::vector<Tuple>& bucket = seen_fingerprints[fingerprint.hash()];
      for (const Tuple& t : bucket) {
        if (t == fingerprint) {
          return;  // duplicate binding
        }
      }
      bucket.push_back(fingerprint);
    }

    // Group key from plain head args.
    std::vector<Value> key_vals;
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      if (rule.head_args[i].agg != AggKind::kNone) {
        continue;
      }
      Result<Value> v = EvalExpr(rule.head_args[i].expr, slots, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      key_vals.push_back(std::move(v).value());
    }
    AggGroup& group = groups[Tuple(std::move(key_vals))];
    if (group.agg_inputs.empty()) {
      group.agg_inputs.resize(agg_positions.size());
    }
    for (size_t j = 0; j < agg_positions.size(); ++j) {
      const CompiledHeadArg& arg = rule.head_args[agg_positions[j]];
      Result<Value> v = EvalExpr(arg.expr, slots, rule.slot_of, *builtins_, *ctx_);
      if (!v.ok()) {
        RecordError(v.status());
        return;
      }
      group.agg_inputs[j].push_back(std::move(v).value());
    }
  };

  EnsureProbeDepth(variant.steps.size());
  std::vector<Value>& slots = slots_scratch_;
  slots.assign(static_cast<size_t>(rule.num_slots), Value());
  if (variant.driver_table.empty()) {
    JoinSteps(rule, variant, 0, &slots, emit);
  } else {
    Table* driver = catalog_->Find(variant.driver_table);
    BOOM_CHECK(driver != nullptr);
    std::vector<Tuple> rows = driver->Rows();
    for (const Tuple& row : rows) {
      if (!BindAtomRow(variant.driver, row, &slots)) {
        continue;
      }
      JoinSteps(rule, variant, 0, &slots, emit);
    }
  }

  // Fold each group into a head tuple.
  for (auto& [key, group] : groups) {
    std::vector<Value> vals;
    vals.reserve(rule.head_args.size());
    size_t key_idx = 0;
    size_t agg_idx = 0;
    for (size_t i = 0; i < rule.head_args.size(); ++i) {
      const CompiledHeadArg& arg = rule.head_args[i];
      if (arg.agg == AggKind::kNone) {
        vals.push_back(key[key_idx++]);
        continue;
      }
      std::vector<Value>& inputs = group.agg_inputs[agg_idx++];
      switch (arg.agg) {
        case AggKind::kCount:
          vals.push_back(Value(static_cast<int64_t>(inputs.size())));
          break;
        case AggKind::kSum: {
          bool all_int = true;
          for (const Value& v : inputs) {
            all_int = all_int && v.is_int();
          }
          if (all_int) {
            int64_t sum = 0;
            for (const Value& v : inputs) {
              sum += v.as_int();
            }
            vals.push_back(Value(sum));
          } else {
            double sum = 0;
            for (const Value& v : inputs) {
              sum += v.ToDouble();
            }
            vals.push_back(Value(sum));
          }
          break;
        }
        case AggKind::kMin:
          vals.push_back(*std::min_element(inputs.begin(), inputs.end()));
          break;
        case AggKind::kMax:
          vals.push_back(*std::max_element(inputs.begin(), inputs.end()));
          break;
        case AggKind::kAvg: {
          double sum = 0;
          for (const Value& v : inputs) {
            sum += v.ToDouble();
          }
          vals.push_back(Value(inputs.empty() ? 0.0 : sum / static_cast<double>(inputs.size())));
          break;
        }
        case AggKind::kBottomK: {
          std::sort(inputs.begin(), inputs.end());
          ValueList list;
          size_t n = std::min(inputs.size(), static_cast<size_t>(arg.k));
          list.assign(inputs.begin(), inputs.begin() + static_cast<long>(n));
          vals.push_back(Value(std::move(list)));
          break;
        }
        case AggKind::kNone:
          break;
      }
    }
    head_rows->push_back(Tuple(std::move(vals)));
  }
}

}  // namespace boom
