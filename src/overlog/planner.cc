#include "src/overlog/planner.h"

#include <algorithm>
#include <map>
#include <set>

#include "src/base/logging.h"

namespace boom {

namespace {

// Working state for compiling a single rule.
class RuleCompiler {
 public:
  RuleCompiler(const Rule& rule, const std::string& program, const Catalog& catalog,
               const PlannerOptions& options)
      : rule_(rule), program_(program), catalog_(catalog), options_(options) {}

  Result<CompiledRule> Run() {
    CompiledRule out;
    out.name = rule_.name;
    out.program = program_;
    out.is_delete = rule_.is_delete;
    out.is_next = rule_.is_next;
    out.has_agg = rule_.head.HasAggregate();
    if (out.is_next && out.has_agg) {
      return Err("@next cannot be combined with aggregates");
    }
    if (out.is_next && out.is_delete) {
      return Err("@next cannot be combined with delete (deletes already defer)");
    }
    out.head_table = rule_.head.table;
    out.head_has_location = rule_.head.has_location;

    const Table* head_table = catalog_.Find(rule_.head.table);
    if (head_table == nullptr) {
      return Err("head table '" + rule_.head.table + "' is not declared");
    }
    if (head_table->def().arity() != rule_.head.args.size()) {
      return Err("head arity mismatch for " + rule_.head.table + ": rule has " +
                 std::to_string(rule_.head.args.size()) + " args, table has " +
                 std::to_string(head_table->def().arity()));
    }
    out.head_is_event = head_table->def().kind == TableKind::kEvent;
    if (out.is_delete) {
      if (out.head_is_event) {
        return Err("cannot delete from event table " + rule_.head.table);
      }
      if (out.has_agg) {
        return Err("delete rules cannot use aggregates");
      }
    }
    BOOM_RETURN_IF_ERROR(ValidateBodyAtoms());
    AssignSlots(&out);

    // Gather positive atom indices in the body.
    std::vector<size_t> positive_atoms;
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      const BodyTerm& t = rule_.body[i];
      if (t.kind == BodyTerm::Kind::kAtom) {
        out.body_tables.push_back(t.atom.table);
        if (!t.atom.negated) {
          positive_atoms.push_back(i);
        }
      }
    }
    out.driverless = positive_atoms.empty();
    out.single_positive_atom = positive_atoms.size() == 1;

    // Full ordering (seed evaluation and aggregate rules): drive from the first positive
    // atom's full table contents, or no driver at all when the body has none.
    {
      Result<CompiledVariant> full = PlanVariant(
          out, positive_atoms.empty() ? -1 : static_cast<int>(positive_atoms[0]),
          positive_atoms);
      if (!full.ok()) {
        return full.status();
      }
      out.full_variant = std::move(full).value();
    }

    if (!out.has_agg) {
      for (size_t atom_idx : positive_atoms) {
        Result<CompiledVariant> variant =
            PlanVariant(out, static_cast<int>(atom_idx), positive_atoms);
        if (!variant.ok()) {
          return variant.status();
        }
        out.variants.push_back(std::move(variant).value());
      }
    }

    // Resolve kVar expressions to slot indexes so evaluation never hashes a variable name.
    for (CompiledHeadArg& arg : out.head_args) {
      ResolveExprSlots(&arg.expr, out);
    }
    ResolveVariantSlots(&out.full_variant, out);
    for (CompiledVariant& variant : out.variants) {
      ResolveVariantSlots(&variant, out);
    }
    return out;
  }

 private:
  Status Err(const std::string& msg) const {
    return InvalidArgument("rule " + rule_.name + ": " + msg);
  }

  Status ValidateBodyAtoms() const {
    for (const BodyTerm& t : rule_.body) {
      if (t.kind != BodyTerm::Kind::kAtom) {
        continue;
      }
      const Table* table = catalog_.Find(t.atom.table);
      if (table == nullptr) {
        return Err("body table '" + t.atom.table + "' is not declared");
      }
      if (table->def().arity() != t.atom.args.size()) {
        return Err("arity mismatch for " + t.atom.table + ": atom has " +
                   std::to_string(t.atom.args.size()) + " args, table has " +
                   std::to_string(table->def().arity()));
      }
    }
    return Status::Ok();
  }

  void AssignSlots(CompiledRule* out) {
    auto intern = [out](const std::string& var) {
      auto [it, added] = out->slot_of.emplace(var, out->num_slots);
      if (added) {
        ++out->num_slots;
      }
      return it->second;
    };
    for (const BodyTerm& t : rule_.body) {
      std::set<std::string> vars;
      switch (t.kind) {
        case BodyTerm::Kind::kAtom:
          for (const Expr& a : t.atom.args) {
            a.CollectVars(&vars);
          }
          break;
        case BodyTerm::Kind::kAssign:
          vars.insert(t.assign.var);
          t.assign.expr.CollectVars(&vars);
          break;
        case BodyTerm::Kind::kCondition:
          t.condition.CollectVars(&vars);
          break;
      }
      for (const std::string& v : vars) {
        intern(v);
      }
    }
    for (const HeadArg& a : rule_.head.args) {
      std::set<std::string> vars;
      a.expr.CollectVars(&vars);
      for (const std::string& v : vars) {
        intern(v);
      }
    }
    // Compile head args.
    for (const HeadArg& a : rule_.head.args) {
      CompiledHeadArg ch;
      ch.expr = a.expr;
      ch.agg = a.agg;
      ch.k = a.k;
      out->head_args.push_back(std::move(ch));
    }
  }

  static void ResolveExprSlots(Expr* e, const CompiledRule& out) {
    if (e->kind == ExprKind::kVar) {
      auto it = out.slot_of.find(e->var);
      if (it != out.slot_of.end()) {
        e->slot = it->second;
      }
    }
    for (Expr& a : e->args) {
      ResolveExprSlots(&a, out);
    }
  }
  static void ResolveVariantSlots(CompiledVariant* variant, const CompiledRule& out) {
    for (CompiledStep& step : variant->steps) {
      ResolveExprSlots(&step.assign_expr, out);
      ResolveExprSlots(&step.condition, out);
    }
  }

  bool ExprVarsBound(const Expr& e, const std::set<int>& bound,
                     const CompiledRule& out) const {
    std::set<std::string> vars;
    e.CollectVars(&vars);
    for (const std::string& v : vars) {
      if (bound.count(out.slot_of.at(v)) == 0) {
        return false;
      }
    }
    return true;
  }

  static bool IsAnonVar(const std::string& name) {
    return name.rfind("_Anon", 0) == 0;
  }

  // Compiles an atom given the current bound-slot set; updates `bound` with new bindings.
  CompiledAtom CompileAtom(const Atom& atom, const CompiledRule& out,
                           std::set<int>* bound, bool is_probe) const {
    CompiledAtom ca;
    ca.table = atom.table;
    ca.negated = atom.negated;
    std::set<int> locally_bound;
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const Expr& arg = atom.args[i];
      CompiledArg carg;
      if (arg.is_const()) {
        carg.is_const = true;
        carg.constant = arg.constant;
        ca.probe_cols.push_back(i);
      } else {
        int slot = out.slot_of.at(arg.var);
        carg.slot = slot;
        bool already = bound->count(slot) > 0 || locally_bound.count(slot) > 0;
        if (already) {
          carg.first_binding = false;
          // Pre-bound vars participate in the index probe; within-atom repeats are checked
          // after binding instead.
          if (bound->count(slot) > 0 && locally_bound.count(slot) == 0) {
            ca.probe_cols.push_back(i);
          }
        } else {
          carg.first_binding = true;
          locally_bound.insert(slot);
        }
      }
      ca.args.push_back(std::move(carg));
    }
    if (!atom.negated) {
      for (int s : locally_bound) {
        bound->insert(s);
      }
    }
    return ca;
  }

  // True when all *named* variables of a negated atom are bound (anonymous ones are
  // existential).
  bool NegatedAtomReady(const Atom& atom, const CompiledRule& out,
                        const std::set<int>& bound) const {
    for (const Expr& arg : atom.args) {
      if (arg.is_var() && !IsAnonVar(arg.var) &&
          bound.count(out.slot_of.at(arg.var)) == 0) {
        return false;
      }
    }
    return true;
  }

  // Cost model: estimated rows matched when probing `ca` (rows scaled down by the distinct
  // count of each probe column, then by the observed probe-hit ratio). All inputs come from
  // PlannerOptions::stats; unknown tables estimate as a single row so const-bound atoms
  // still order ahead of unconstrained scans via their probe columns.
  double EstimatedMatches(const CompiledAtom& ca) const {
    auto it = options_.stats.find(ca.table);
    const TableStats* ts = it == options_.stats.end() ? nullptr : &it->second;
    double est = ts != nullptr ? std::max<double>(1.0, static_cast<double>(ts->rows)) : 1.0;
    if (ca.probe_cols.empty() && !ca.args.empty()) {
      // No bound or constant column: the "probe" is a cross product with every row. Stats
      // say nothing useful here — a table empty at plan time (every event table) can hold
      // rows mid-tick — so penalize unconditionally; a connected order always costs less
      // when one exists.
      return std::max(est, kCrossProductPenalty);
    }
    for (size_t col : ca.probe_cols) {
      uint64_t distinct =
          (ts != nullptr && col < ts->distinct.size()) ? ts->distinct[col] : 1;
      est /= static_cast<double>(std::max<uint64_t>(distinct, 1));
    }
    if (ts != nullptr && !ca.probe_cols.empty()) {
      est *= ts->probe_hit_ratio;
    }
    return std::max(est, 1e-3);
  }

  static constexpr double kCrossProductPenalty = 1e4;

  // Chooses the evaluation order for one variant. Under cost-based planning with >= 2
  // non-driver positive atoms, enumerates every permutation of those atoms (up to 6; the
  // cost-greedy fallback inside OrderBody handles wider bodies), costs each candidate as the
  // sum of estimated intermediate binding counts, and keeps the strictly cheapest —
  // permutations are generated in lexicographic order of body positions, so ties resolve to
  // body order deterministically.
  Result<CompiledVariant> PlanVariant(const CompiledRule& out, int driver_idx,
                                      const std::vector<size_t>& positive_atoms) const {
    std::vector<size_t> rest;
    for (size_t idx : positive_atoms) {
      if (static_cast<int>(idx) != driver_idx) {
        rest.push_back(idx);
      }
    }
    if (!options_.cost_based || rest.size() < 2 || rest.size() > 6) {
      return OrderBody(out, driver_idx, nullptr);
    }
    std::sort(rest.begin(), rest.end());
    bool have_best = false;
    double best_cost = 0;
    CompiledVariant best;
    do {
      Result<CompiledVariant> candidate = OrderBody(out, driver_idx, &rest);
      if (!candidate.ok()) {
        return candidate.status();
      }
      if (!have_best || candidate.value().est_cost < best_cost) {
        have_best = true;
        best_cost = candidate.value().est_cost;
        best = std::move(candidate).value();
      }
    } while (std::next_permutation(rest.begin(), rest.end()));
    return best;
  }

  // Orders one rule body. When `forced_positive` is non-null it dictates the relative order
  // of non-driver positive atoms; otherwise step 2 picks greedily (most-bound-first by
  // default, cheapest-estimated-matches under cost-based planning).
  Result<CompiledVariant> OrderBody(const CompiledRule& out, int driver_idx,
                                    const std::vector<size_t>* forced_positive) const {
    CompiledVariant variant;
    std::set<int> bound;
    std::vector<bool> used(rule_.body.size(), false);
    double est_bindings = 1.0;  // per driver row for delta variants
    double cost = 0;
    size_t forced_cursor = 0;

    if (driver_idx >= 0) {
      const Atom& driver_atom = rule_.body[static_cast<size_t>(driver_idx)].atom;
      variant.driver_table = driver_atom.table;
      variant.driver = CompileAtom(driver_atom, out, &bound, /*is_probe=*/false);
      used[static_cast<size_t>(driver_idx)] = true;
    }

    size_t remaining = 0;
    for (size_t i = 0; i < rule_.body.size(); ++i) {
      if (!used[i]) {
        ++remaining;
      }
    }

    while (remaining > 0) {
      bool progressed = false;

      // 1. Emit every ready condition, assignment, and negated atom (cheap filters first).
      for (size_t i = 0; i < rule_.body.size(); ++i) {
        if (used[i]) {
          continue;
        }
        const BodyTerm& t = rule_.body[i];
        if (t.kind == BodyTerm::Kind::kCondition &&
            ExprVarsBound(t.condition, bound, out)) {
          CompiledStep step;
          step.kind = BodyTerm::Kind::kCondition;
          step.condition = t.condition;
          variant.steps.push_back(std::move(step));
          used[i] = true;
          --remaining;
          progressed = true;
        } else if (t.kind == BodyTerm::Kind::kAssign &&
                   ExprVarsBound(t.assign.expr, bound, out)) {
          int slot = out.slot_of.at(t.assign.var);
          CompiledStep step;
          if (bound.count(slot) > 0) {
            // The target is already bound in this ordering (e.g. by the delta-driver atom of
            // another variant): unification semantics turn the assignment into an equality
            // check.
            step.kind = BodyTerm::Kind::kCondition;
            step.condition = Expr::Call("==", {Expr::Var(t.assign.var), t.assign.expr});
          } else {
            step.kind = BodyTerm::Kind::kAssign;
            step.assign_slot = slot;
            step.assign_expr = t.assign.expr;
            bound.insert(slot);
          }
          variant.steps.push_back(std::move(step));
          used[i] = true;
          --remaining;
          progressed = true;
        } else if (t.kind == BodyTerm::Kind::kAtom && t.atom.negated &&
                   NegatedAtomReady(t.atom, out, bound)) {
          CompiledStep step;
          step.kind = BodyTerm::Kind::kAtom;
          step.atom = CompileAtom(t.atom, out, &bound, /*is_probe=*/true);
          variant.steps.push_back(std::move(step));
          used[i] = true;
          --remaining;
          progressed = true;
        }
      }
      if (progressed) {
        continue;
      }

      // 2. Pick the next positive atom: the forced enumeration order when planning
      //    cost-based candidates, the cheapest estimated probe under cost-greedy fallback,
      //    or the classic most-bound/const-count heuristic by default.
      int best = -1;
      if (forced_positive != nullptr) {
        while (forced_cursor < forced_positive->size() &&
               used[(*forced_positive)[forced_cursor]]) {
          ++forced_cursor;
        }
        if (forced_cursor < forced_positive->size()) {
          best = static_cast<int>((*forced_positive)[forced_cursor++]);
        }
      } else if (options_.cost_based) {
        double best_est = 0;
        for (size_t i = 0; i < rule_.body.size(); ++i) {
          if (used[i]) {
            continue;
          }
          const BodyTerm& t = rule_.body[i];
          if (t.kind != BodyTerm::Kind::kAtom || t.atom.negated) {
            continue;
          }
          std::set<int> trial_bound = bound;
          CompiledAtom trial = CompileAtom(t.atom, out, &trial_bound, /*is_probe=*/true);
          double est = EstimatedMatches(trial);
          if (best < 0 || est < best_est) {
            best_est = est;
            best = static_cast<int>(i);
          }
        }
      } else {
        int best_score = -1;
        for (size_t i = 0; i < rule_.body.size(); ++i) {
          if (used[i]) {
            continue;
          }
          const BodyTerm& t = rule_.body[i];
          if (t.kind != BodyTerm::Kind::kAtom || t.atom.negated) {
            continue;
          }
          int score = 0;
          for (const Expr& arg : t.atom.args) {
            if (arg.is_const() ||
                (arg.is_var() && bound.count(out.slot_of.at(arg.var)) > 0)) {
              ++score;
            }
          }
          if (score > best_score) {
            best_score = score;
            best = static_cast<int>(i);
          }
        }
      }
      if (best < 0) {
        return Err("cannot order rule body: unbound condition, assignment, or negation");
      }
      CompiledStep step;
      step.kind = BodyTerm::Kind::kAtom;
      step.atom = CompileAtom(rule_.body[static_cast<size_t>(best)].atom, out, &bound,
                              /*is_probe=*/true);
      if (options_.cost_based) {
        est_bindings *= EstimatedMatches(step.atom);
        cost += est_bindings;
        step.est_rows = est_bindings;
      }
      variant.steps.push_back(std::move(step));
      used[static_cast<size_t>(best)] = true;
      --remaining;
    }

    // Safety: all head variables (plain and aggregated) must be bound.
    for (const HeadArg& a : rule_.head.args) {
      if (!ExprVarsBound(a.expr, bound, out)) {
        return Err("unsafe head: variable in " + a.ToString() +
                   " is not bound by the body");
      }
    }
    variant.bound_slots.assign(bound.begin(), bound.end());
    if (options_.cost_based) {
      variant.est_cost = cost;
    }
    return variant;
  }

  const Rule& rule_;
  const std::string& program_;
  const Catalog& catalog_;
  const PlannerOptions& options_;
};

// Iterative Tarjan SCC over table dependency graph.
class SccFinder {
 public:
  explicit SccFinder(const std::map<std::string, std::set<std::string>>& adj) : adj_(adj) {}

  // Returns component id per node; ids are in reverse topological order of the condensation
  // (Tarjan property: a component is numbered after all components it can reach).
  std::map<std::string, int> Run() {
    for (const auto& [node, succs] : adj_) {
      if (index_.count(node) == 0) {
        Strongconnect(node);
      }
    }
    return component_;
  }

  int num_components() const { return next_component_; }

 private:
  void Strongconnect(const std::string& root) {
    struct Frame {
      std::string node;
      std::vector<std::string> succs;
      size_t next_succ = 0;
    };
    std::vector<Frame> stack;
    auto push_node = [this, &stack](const std::string& n) {
      index_[n] = lowlink_[n] = next_index_++;
      tarjan_stack_.push_back(n);
      on_stack_.insert(n);
      Frame f;
      f.node = n;
      auto it = adj_.find(n);
      if (it != adj_.end()) {
        f.succs.assign(it->second.begin(), it->second.end());
      }
      stack.push_back(std::move(f));
    };
    push_node(root);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next_succ < frame.succs.size()) {
        const std::string& succ = frame.succs[frame.next_succ++];
        if (index_.count(succ) == 0) {
          push_node(succ);
        } else if (on_stack_.count(succ) > 0) {
          lowlink_[frame.node] = std::min(lowlink_[frame.node], index_[succ]);
        }
      } else {
        if (lowlink_[frame.node] == index_[frame.node]) {
          while (true) {
            std::string top = tarjan_stack_.back();
            tarjan_stack_.pop_back();
            on_stack_.erase(top);
            component_[top] = next_component_;
            if (top == frame.node) {
              break;
            }
          }
          ++next_component_;
        }
        std::string done = frame.node;
        stack.pop_back();
        if (!stack.empty()) {
          lowlink_[stack.back().node] =
              std::min(lowlink_[stack.back().node], lowlink_[done]);
        }
      }
    }
  }

  const std::map<std::string, std::set<std::string>>& adj_;
  std::map<std::string, int> index_;
  std::map<std::string, int> lowlink_;
  std::map<std::string, int> component_;
  std::vector<std::string> tarjan_stack_;
  std::set<std::string> on_stack_;
  int next_index_ = 0;
  int next_component_ = 0;
};

// Serializes one atom with canonical slot numbering assigned in first-use order. Two
// variants whose driver + leading atom runs serialize identically are structurally equal
// modulo variable naming: same tables, same negation flags, same const positions, and the
// same repeat/bind pattern — which also fixes every step's probe columns.
std::string CanonAtomToken(const CompiledAtom& atom, std::unordered_map<int, int>* canon_of,
                           int* next_canon) {
  std::string tok = atom.negated ? "!" : "";
  tok += atom.table;
  tok += '(';
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i > 0) {
      tok += ',';
    }
    const CompiledArg& arg = atom.args[i];
    if (arg.is_const) {
      tok += '=';
      tok += arg.constant.ToString();
    } else {
      auto [it, added] = canon_of->emplace(arg.slot, *next_canon);
      if (added) {
        ++(*next_canon);
      }
      tok += 'v';
      tok += std::to_string(it->second);
    }
  }
  tok += ')';
  return tok;
}

// Populates CompiledProgram::shared_prefixes: per stratum, delta variants grouped by the
// canonical serialization of (driver, first probe atom), then widened to the longest token
// run common to every group member. Iteration is stratum-ascending with string-sorted group
// keys and program-ordered members, so group numbering is deterministic.
void DetectSharedPrefixes(CompiledProgram* out) {
  for (int s = 0; s < out->num_strata; ++s) {
    const StratumSchedule& sched = out->schedule[static_cast<size_t>(s)];
    struct Cand {
      size_t rule;
      size_t variant;
      std::vector<std::string> tokens;
    };
    std::map<std::string, std::vector<Cand>> by_key;
    for (size_t ri : sched.delta_rules) {
      const CompiledRule& cr = out->rules[ri];
      for (size_t vi = 0; vi < cr.variants.size(); ++vi) {
        const CompiledVariant& v = cr.variants[vi];
        std::unordered_map<int, int> canon;
        int next = 0;
        std::vector<std::string> toks;
        toks.push_back(CanonAtomToken(v.driver, &canon, &next));
        for (const CompiledStep& st : v.steps) {
          if (st.kind != BodyTerm::Kind::kAtom) {
            break;
          }
          toks.push_back(CanonAtomToken(st.atom, &canon, &next));
        }
        if (toks.size() < 2) {
          continue;
        }
        by_key[toks[0] + "|" + toks[1]].push_back(Cand{ri, vi, std::move(toks)});
      }
    }
    for (auto& [key, cands] : by_key) {
      if (cands.size() < 2) {
        continue;
      }
      size_t common = cands[0].tokens.size();
      for (const Cand& c : cands) {
        size_t m = 0;
        while (m < common && m < c.tokens.size() && c.tokens[m] == cands[0].tokens[m]) {
          ++m;
        }
        common = m;
      }
      SharedPrefixGroup g;
      g.stratum = s;
      g.prefix_steps = common - 1;  // >= 1: the 2-token key guarantees common >= 2
      const CompiledVariant& first = out->rules[cands[0].rule].variants[cands[0].variant];
      g.driver_table = first.driver_table;
      std::unordered_map<int, int> canon;
      int next = 0;
      auto canonicalize = [&canon, &next](const CompiledAtom& a) {
        CompiledAtom ca = a;
        ca.table_ptr = nullptr;  // re-resolved by Engine::Recompile
        for (CompiledArg& arg : ca.args) {
          if (!arg.is_const) {
            auto [it, added] = canon.emplace(arg.slot, next);
            if (added) {
              ++next;
            }
            arg.slot = it->second;
          }
        }
        return ca;
      };
      g.canon.driver_table = first.driver_table;
      g.canon.driver = canonicalize(first.driver);
      for (size_t k = 0; k < g.prefix_steps; ++k) {
        CompiledStep st;
        st.kind = BodyTerm::Kind::kAtom;
        st.atom = canonicalize(first.steps[k].atom);
        g.canon.steps.push_back(std::move(st));
      }
      g.canon_num_slots = next;
      for (size_t t = 0; t < common; ++t) {
        if (t > 0) {
          g.key += " & ";
        }
        g.key += cands[0].tokens[t];
      }
      for (const Cand& c : cands) {
        SharedPrefixMember m;
        m.rule_index = c.rule;
        m.variant_index = c.variant;
        m.slot_map.assign(static_cast<size_t>(g.canon_num_slots), -1);
        std::unordered_map<int, int> member_canon;
        int member_next = 0;
        auto walk = [&m, &member_canon, &member_next](const CompiledAtom& a) {
          for (const CompiledArg& arg : a.args) {
            if (arg.is_const) {
              continue;
            }
            auto [it, added] = member_canon.emplace(arg.slot, member_next);
            if (added) {
              m.slot_map[static_cast<size_t>(it->second)] = arg.slot;
              ++member_next;
            }
          }
        };
        const CompiledVariant& mv = out->rules[c.rule].variants[c.variant];
        walk(mv.driver);
        for (size_t k = 0; k < g.prefix_steps; ++k) {
          walk(mv.steps[k].atom);
        }
        out->rules[c.rule].variants[c.variant].shared_group =
            static_cast<int>(out->shared_prefixes.size());
        g.members.push_back(std::move(m));
      }
      out->shared_prefixes.push_back(std::move(g));
    }
  }
}

}  // namespace

Result<CompiledProgram> CompileRules(const std::vector<Rule>& rules,
                                     const std::vector<std::string>& programs,
                                     const Catalog& catalog,
                                     const PlannerOptions& options) {
  CompiledProgram out;
  out.cost_based = options.cost_based;
  for (size_t i = 0; i < rules.size(); ++i) {
    const std::string program = i < programs.size() ? programs[i] : "";
    Result<CompiledRule> compiled = RuleCompiler(rules[i], program, catalog, options).Run();
    if (!compiled.ok()) {
      return compiled.status();
    }
    out.rules.push_back(std::move(compiled).value());
  }

  // --- incremental-aggregate eligibility ---
  // A table is insert-only when no delete rule targets it and no aggregate rule derives it
  // (aggregate reconciliation can retract rows).
  {
    std::set<std::string> mutated;
    for (const CompiledRule& cr : out.rules) {
      if (cr.is_delete || cr.has_agg) {
        mutated.insert(cr.head_table);
      }
    }
    for (CompiledRule& cr : out.rules) {
      if (!cr.has_agg || !cr.single_positive_atom || cr.body_tables.size() != 1 ||
          cr.head_has_location) {
        continue;
      }
      const Table* driver = catalog.Find(cr.body_tables[0]);
      if (driver == nullptr || driver->def().kind != TableKind::kTable ||
          driver->def().ttl_ms > 0 ||  // soft-state rows expire: not insert-only
          driver->def().EffectiveKey().size() != driver->def().arity() ||
          mutated.count(cr.body_tables[0]) > 0) {
        continue;
      }
      bool kinds_ok = true;
      for (const CompiledHeadArg& arg : cr.head_args) {
        if (arg.agg == AggKind::kBottomK) {
          kinds_ok = false;
        }
      }
      cr.incremental_agg = kinds_ok;
    }
  }

  // --- stratification ---
  // Dependency edges body_table -> head_table; an edge is "negative" when the body atom is
  // negated or the rule aggregates. Delete rules impose no derivation edges (deletions apply
  // at tick boundaries).
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::pair<std::string, std::string>, int> weight;  // max weight per edge
  auto touch = [&adj](const std::string& t) { adj[t]; };

  for (size_t i = 0; i < rules.size(); ++i) {
    const Rule& rule = rules[i];
    touch(rule.head.table);
    for (const BodyTerm& t : rule.body) {
      if (t.kind != BodyTerm::Kind::kAtom) {
        continue;
      }
      touch(t.atom.table);
      if (rule.is_delete || rule.is_next) {
        continue;  // deferred heads impose no same-timestep derivation edge
      }
      int w = (t.atom.negated || rule.head.HasAggregate()) ? 1 : 0;
      adj[t.atom.table].insert(rule.head.table);
      auto key = std::make_pair(t.atom.table, rule.head.table);
      auto it = weight.find(key);
      if (it == weight.end()) {
        weight[key] = w;
      } else {
        it->second = std::max(it->second, w);
      }
    }
  }

  SccFinder scc(adj);
  std::map<std::string, int> component = scc.Run();

  // Any negative edge inside one SCC makes the program unstratifiable.
  for (const auto& [edge, w] : weight) {
    if (w > 0 && component[edge.first] == component[edge.second]) {
      return InvalidArgument("unstratifiable program: negation/aggregation cycle through " +
                             edge.first + " and " + edge.second);
    }
  }

  // Longest-path strata over the condensation. Tarjan numbers components in reverse
  // topological order, so iterating components from high to low visits sources first.
  std::map<int, int> comp_stratum;
  for (const auto& [node, comp] : component) {
    comp_stratum[comp] = 0;
  }
  std::vector<std::pair<int, std::string>> order;  // (component, node) sorted desc
  order.reserve(component.size());
  for (const auto& [node, comp] : component) {
    order.emplace_back(comp, node);
  }
  std::sort(order.begin(), order.end(), std::greater<>());
  for (const auto& [comp, node] : order) {
    for (const std::string& succ : adj[node]) {
      int succ_comp = component[succ];
      if (succ_comp == comp) {
        continue;
      }
      int w = weight[{node, succ}];
      comp_stratum[succ_comp] =
          std::max(comp_stratum[succ_comp], comp_stratum[comp] + w);
    }
  }

  auto table_stratum = [&](const std::string& table) {
    auto it = component.find(table);
    return it == component.end() ? 0 : comp_stratum[it->second];
  };

  int max_stratum = 0;
  for (size_t i = 0; i < out.rules.size(); ++i) {
    CompiledRule& cr = out.rules[i];
    if (cr.is_delete || cr.is_next) {
      // Deferred heads run once their body tables are final.
      int s = 0;
      for (const BodyTerm& t : rules[i].body) {
        if (t.kind == BodyTerm::Kind::kAtom) {
          s = std::max(s, table_stratum(t.atom.table));
        }
      }
      cr.stratum = s;
    } else {
      cr.stratum = table_stratum(cr.head_table);
    }
    max_stratum = std::max(max_stratum, cr.stratum);
  }
  out.num_strata = max_stratum + 1;

  // Build the per-stratum schedule (see StratumSchedule): rules grouped by role, plus the
  // driver-table index that lets the engine's fixpoint visit only dirty rules per round.
  out.schedule.assign(static_cast<size_t>(out.num_strata), StratumSchedule{});
  for (size_t i = 0; i < out.rules.size(); ++i) {
    const CompiledRule& cr = out.rules[i];
    StratumSchedule& sched = out.schedule[static_cast<size_t>(cr.stratum)];
    if (cr.has_agg) {
      sched.agg_rules.push_back(i);
      continue;
    }
    if (cr.driverless) {
      sched.seed_rules.push_back(i);
      continue;
    }
    size_t pos = sched.delta_rules.size();
    sched.delta_rules.push_back(i);
    for (const CompiledVariant& v : cr.variants) {
      std::vector<size_t>& driven = sched.delta_rules_by_driver[v.driver_table];
      if (driven.empty() || driven.back() != pos) {  // variants may share a driver table
        driven.push_back(pos);
      }
    }
  }

  if (options.cost_based) {
    // Automatic index selection: every (table, probe columns) pair any chosen plan will
    // probe, sorted + deduped for the engine's post-recompile WarmIndex sweep.
    std::set<std::pair<std::string, std::vector<size_t>>> warm;
    auto collect = [&warm](const CompiledVariant& v) {
      for (const CompiledStep& step : v.steps) {
        if (step.kind == BodyTerm::Kind::kAtom && !step.atom.probe_cols.empty()) {
          warm.emplace(step.atom.table, step.atom.probe_cols);
        }
      }
    };
    for (const CompiledRule& cr : out.rules) {
      collect(cr.full_variant);
      for (const CompiledVariant& v : cr.variants) {
        collect(v);
      }
    }
    out.warm_indexes.assign(warm.begin(), warm.end());

    DetectSharedPrefixes(&out);
  }
  return out;
}

}  // namespace boom
