#include "src/overlog/builtins.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/base/strings.h"

namespace boom {

void BuiltinRegistry::Register(const std::string& name, int arity, Fn fn) {
  fns_[name] = Entry{arity, std::move(fn)};
}

void BuiltinRegistry::MarkPure(const std::string& name) {
  auto it = fns_.find(name);
  if (it != fns_.end()) {
    it->second.pure = true;
  }
}

void BuiltinRegistry::MarkImpure(const std::string& name) {
  auto it = fns_.find(name);
  if (it != fns_.end()) {
    it->second.pure = false;
  }
}

Result<Value> BuiltinRegistry::Call(const EvalContext& ctx, const std::string& name,
                                    const std::vector<Value>& args) const {
  auto it = fns_.find(name);
  if (it == fns_.end()) {
    return NotFound("unknown builtin function '" + name + "'");
  }
  const Entry& entry = it->second;
  if (entry.arity >= 0 && static_cast<size_t>(entry.arity) != args.size()) {
    return InvalidArgument("builtin '" + name + "' expects " + std::to_string(entry.arity) +
                           " argument(s), got " + std::to_string(args.size()));
  }
  return entry.fn(ctx, args);
}

namespace {

bool BothInt(const Value& a, const Value& b) { return a.is_int() && b.is_int(); }

Result<Value> Arith(const std::string& op, const Value& a, const Value& b) {
  if (op == "+" && a.is_string() && b.is_string()) {
    return Value(a.as_string() + b.as_string());
  }
  if (op == "+" && a.is_list() && b.is_list()) {
    ValueList out = a.as_list();
    const ValueList& rhs = b.as_list();
    out.insert(out.end(), rhs.begin(), rhs.end());
    return Value(std::move(out));
  }
  if (!a.is_numeric() || !b.is_numeric()) {
    return InvalidArgument("operator '" + op + "' on non-numeric values " + a.ToString() +
                           ", " + b.ToString());
  }
  if (op == "+") {
    return BothInt(a, b) ? Value(a.as_int() + b.as_int()) : Value(a.ToDouble() + b.ToDouble());
  }
  if (op == "-") {
    return BothInt(a, b) ? Value(a.as_int() - b.as_int()) : Value(a.ToDouble() - b.ToDouble());
  }
  if (op == "*") {
    return BothInt(a, b) ? Value(a.as_int() * b.as_int()) : Value(a.ToDouble() * b.ToDouble());
  }
  if (op == "/") {
    if (BothInt(a, b)) {
      if (b.as_int() == 0) {
        return InvalidArgument("integer division by zero");
      }
      return Value(a.as_int() / b.as_int());
    }
    return Value(a.ToDouble() / b.ToDouble());
  }
  if (op == "%") {
    if (!BothInt(a, b) || b.as_int() == 0) {
      return InvalidArgument("'%' requires integers with a nonzero divisor");
    }
    int64_t m = a.as_int() % b.as_int();
    if (m < 0) {
      m += std::abs(b.as_int());
    }
    return Value(m);
  }
  return InvalidArgument("unknown arithmetic operator " + op);
}

}  // namespace

BuiltinRegistry BuiltinRegistry::Standard() {
  BuiltinRegistry reg;
  auto pure = [&reg](const std::string& name, int arity,
                     std::function<Result<Value>(const std::vector<Value>&)> fn) {
    reg.Register(name, arity,
                 [fn = std::move(fn)](const EvalContext&, const std::vector<Value>& args) {
                   return fn(args);
                 });
  };

  for (const char* op : {"+", "-", "*", "/", "%"}) {
    pure(op, 2, [op = std::string(op)](const std::vector<Value>& a) {
      return Arith(op, a[0], a[1]);
    });
  }
  pure("==", 2, [](const std::vector<Value>& a) { return Value(a[0] == a[1]); });
  pure("!=", 2, [](const std::vector<Value>& a) { return Value(a[0] != a[1]); });
  pure("<", 2, [](const std::vector<Value>& a) { return Value(a[0] < a[1]); });
  pure("<=", 2, [](const std::vector<Value>& a) { return Value(a[0] <= a[1]); });
  pure(">", 2, [](const std::vector<Value>& a) { return Value(a[0] > a[1]); });
  pure(">=", 2, [](const std::vector<Value>& a) { return Value(a[0] >= a[1]); });
  pure("&&", 2, [](const std::vector<Value>& a) { return Value(a[0].Truthy() && a[1].Truthy()); });
  pure("||", 2, [](const std::vector<Value>& a) { return Value(a[0].Truthy() || a[1].Truthy()); });
  pure("!", 1, [](const std::vector<Value>& a) { return Value(!a[0].Truthy()); });
  pure("neg", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (a[0].is_int()) {
      return Value(-a[0].as_int());
    }
    if (a[0].is_double()) {
      return Value(-a[0].as_double());
    }
    return InvalidArgument("neg on non-numeric value");
  });

  pure("if", 3, [](const std::vector<Value>& a) {
    return a[0].Truthy() ? a[1] : a[2];
  });

  // --- strings ---
  pure("str_cat", -1, [](const std::vector<Value>& a) {
    std::string out;
    for (const Value& v : a) {
      out += v.ToString();
    }
    return Value(std::move(out));
  });
  pure("str_len", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string()) {
      return InvalidArgument("str_len on non-string");
    }
    return Value(static_cast<int64_t>(a[0].as_string().size()));
  });
  pure("to_string", 1, [](const std::vector<Value>& a) { return Value(a[0].ToString()); });
  pure("to_int", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (a[0].is_int()) {
      return a[0];
    }
    if (a[0].is_double()) {
      return Value(static_cast<int64_t>(a[0].as_double()));
    }
    if (a[0].is_string()) {
      return Value(static_cast<int64_t>(std::strtoll(a[0].as_string().c_str(), nullptr, 10)));
    }
    return InvalidArgument("to_int on " + a[0].ToString());
  });
  pure("starts_with", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string() || !a[1].is_string()) {
      return InvalidArgument("starts_with expects strings");
    }
    return Value(StartsWith(a[0].as_string(), a[1].as_string()));
  });

  // --- paths ---
  pure("path_join", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string() || !a[1].is_string()) {
      return InvalidArgument("path_join expects strings");
    }
    return Value(PathJoin(a[0].as_string(), a[1].as_string()));
  });
  pure("path_dirname", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string()) {
      return InvalidArgument("path_dirname expects a string");
    }
    return Value(PathDirname(a[0].as_string()));
  });
  pure("path_basename", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string()) {
      return InvalidArgument("path_basename expects a string");
    }
    return Value(PathBasename(a[0].as_string()));
  });

  // --- hashing (stable; used for partition routing) ---
  pure("hash", 1, [](const std::vector<Value>& a) {
    return Value(static_cast<int64_t>(Fnv1a64(a[0].ToString()) & 0x7fffffffffffffffULL));
  });
  // The federation routing function, bit-for-bit the client's RoutingPid
  // (src/boomfs/protocol.h): full 64-bit FNV-1a of the raw key string, mod the partition
  // count. Kept separate from `hash` (which masks to 63 bits and stringifies non-strings
  // with quoting) so rules can fence by the exact pid the client routed with.
  pure("route_pid", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_string() || !a[1].is_int() || a[1].as_int() <= 0) {
      return InvalidArgument("route_pid expects (string key, positive int n)");
    }
    return Value(static_cast<int64_t>(Fnv1a64(a[0].as_string()) %
                                      static_cast<uint64_t>(a[1].as_int())));
  });

  // --- math ---
  pure("abs", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (a[0].is_int()) {
      return Value(std::abs(a[0].as_int()));
    }
    if (a[0].is_double()) {
      return Value(std::fabs(a[0].as_double()));
    }
    return InvalidArgument("abs on non-numeric");
  });
  pure("floor", 1, [](const std::vector<Value>& a) {
    return Value(static_cast<int64_t>(std::floor(a[0].ToDouble())));
  });
  pure("ceil", 1, [](const std::vector<Value>& a) {
    return Value(static_cast<int64_t>(std::ceil(a[0].ToDouble())));
  });
  pure("f_min", 2, [](const std::vector<Value>& a) { return a[0] < a[1] ? a[0] : a[1]; });
  pure("f_max", 2, [](const std::vector<Value>& a) { return a[0] < a[1] ? a[1] : a[0]; });

  // --- lists ---
  pure("list", -1, [](const std::vector<Value>& a) { return Value(ValueList(a)); });
  pure("list_len", 1, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_list()) {
      return InvalidArgument("list_len on non-list");
    }
    return Value(static_cast<int64_t>(a[0].as_list().size()));
  });
  pure("list_get", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_list() || !a[1].is_int()) {
      return InvalidArgument("list_get expects (list, index)");
    }
    const ValueList& list = a[0].as_list();
    int64_t i = a[1].as_int();
    if (i < 0 || static_cast<size_t>(i) >= list.size()) {
      return OutOfRange("list_get index " + std::to_string(i) + " out of range");
    }
    return list[static_cast<size_t>(i)];
  });
  pure("list_contains", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_list()) {
      return InvalidArgument("list_contains on non-list");
    }
    const ValueList& list = a[0].as_list();
    return Value(std::find(list.begin(), list.end(), a[1]) != list.end());
  });
  pure("list_project", 2, [](const std::vector<Value>& a) -> Result<Value> {
    // [[a0,a1,...],[b0,b1,...]] , i  ->  [ai, bi, ...]; used to strip sort keys from
    // bottomk<k, [Cost, Payload]> results.
    if (!a[0].is_list() || !a[1].is_int()) {
      return InvalidArgument("list_project expects (list-of-lists, index)");
    }
    size_t idx = static_cast<size_t>(a[1].as_int());
    ValueList out;
    for (const Value& elem : a[0].as_list()) {
      if (!elem.is_list() || idx >= elem.as_list().size()) {
        return InvalidArgument("list_project: element is not a list with index " +
                               std::to_string(idx));
      }
      out.push_back(elem.as_list()[idx]);
    }
    return Value(std::move(out));
  });
  pure("list_append", 2, [](const std::vector<Value>& a) -> Result<Value> {
    if (!a[0].is_list()) {
      return InvalidArgument("list_append on non-list");
    }
    ValueList out = a[0].as_list();
    out.push_back(a[1]);
    return Value(std::move(out));
  });

  // --- engine context ---
  reg.Register("f_now", 0, [](const EvalContext& ctx, const std::vector<Value>&) {
    return Result<Value>(Value(ctx.now_ms));
  });
  reg.Register("f_me", 0, [](const EvalContext& ctx, const std::vector<Value>&) {
    return Result<Value>(Value(ctx.local_address));
  });
  reg.Register("f_rand", 0, [](const EvalContext& ctx, const std::vector<Value>&) -> Result<Value> {
    if (ctx.rng == nullptr) {
      return FailedPrecondition("f_rand: engine has no RNG");
    }
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return Value(dist(*ctx.rng));
  });
  reg.Register("f_unique_id", 0,
               [](const EvalContext& ctx, const std::vector<Value>&) -> Result<Value> {
                 if (ctx.id_counter == nullptr) {
                   return FailedPrecondition("f_unique_id: engine has no id counter");
                 }
                 uint64_t id = ((++*ctx.id_counter) << 20) | (ctx.id_salt & 0xFFFFF);
                 return Value(static_cast<int64_t>(id & 0x7FFFFFFFFFFFFFFFULL));
               });
  reg.Register("f_randint", 1,
               [](const EvalContext& ctx, const std::vector<Value>& a) -> Result<Value> {
                 if (ctx.rng == nullptr) {
                   return FailedPrecondition("f_randint: engine has no RNG");
                 }
                 if (!a[0].is_int() || a[0].as_int() <= 0) {
                   return InvalidArgument("f_randint expects a positive integer bound");
                 }
                 std::uniform_int_distribution<int64_t> dist(0, a[0].as_int() - 1);
                 return Value(dist(*ctx.rng));
               });

  // Everything above is a pure function of its arguments plus the read-only EvalContext —
  // except the three stateful ones, which advance the engine Rng / id counter and therefore
  // pin their rules to serial, program-order evaluation in the parallel fixpoint.
  for (auto& [name, entry] : reg.fns_) {
    entry.pure = true;
  }
  reg.MarkImpure("f_rand");
  reg.MarkImpure("f_randint");
  reg.MarkImpure("f_unique_id");

  return reg;
}

}  // namespace boom
