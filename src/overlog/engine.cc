#include "src/overlog/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/base/logging.h"
#include "src/base/strings.h"

namespace boom {

void Engine::AggAccum::Fold(const Value& v) {
  ++count;
  if (v.is_numeric()) {
    if (v.is_int() && sum_is_int) {
      sum_i += v.as_int();
    } else {
      if (sum_is_int) {
        sum_d = static_cast<double>(sum_i);
        sum_is_int = false;
      }
      sum_d += v.ToDouble();
    }
  }
  if (!has_minmax) {
    min = v;
    max = v;
    has_minmax = true;
  } else {
    if (v < min) {
      min = v;
    }
    if (max < v) {
      max = v;
    }
  }
}

Value Engine::AggAccum::Finish(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return Value(count);
    case AggKind::kSum:
      return sum_is_int ? Value(sum_i) : Value(sum_d);
    case AggKind::kMin:
      return min;
    case AggKind::kMax:
      return max;
    case AggKind::kAvg: {
      double total = sum_is_int ? static_cast<double>(sum_i) : sum_d;
      return Value(count == 0 ? 0.0 : total / static_cast<double>(count));
    }
    case AggKind::kBottomK:
    case AggKind::kNone:
      break;
  }
  return Value();
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      builtins_(BuiltinRegistry::Standard()),
      rng_(options_.seed),
      evaluator_(&catalog_, &builtins_, &ctx_) {
  ctx_.local_address = options_.address;
  ctx_.rng = &rng_;
  ctx_.id_counter = &id_counter_;
  ctx_.id_salt = options_.id_salt.value_or(Fnv1a64(options_.address));
  if (options_.worker_threads > 1) {
    // Flip tuple refcounts to concurrent mode before any worker thread exists; the flag is
    // sticky for the process, so engines created later share tuples safely with this one.
    Tuple::EnableConcurrentMode();
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads - 1);
  }
}

Status Engine::InstallSource(std::string_view source, std::map<std::string, Value> consts) {
  ParserOptions popts;
  for (const std::string& name : catalog_.TableNames()) {
    popts.known_tables.insert(name);
  }
  popts.consts = std::move(consts);
  for (const std::string& fn : builtins_.Names()) {
    popts.known_functions.insert(fn);
  }
  Result<Program> program = ParseProgram(source, popts);
  if (!program.ok()) {
    return program.status();
  }
  return Install(std::move(program).value());
}

Status Engine::Install(Program program) {
  // Externs are declare-or-verify: Catalog::Declare is a no-op for an identical existing
  // declaration and an error for a conflicting one, which is exactly the contract an
  // `extern` schema expectation wants. When the owner is not installed yet, this creates
  // the table and the owner's later (identical) declaration collapses into it.
  for (const TableDef& def : program.externs) {
    BOOM_RETURN_IF_ERROR(catalog_.Declare(def));
  }
  for (const TableDef& def : program.tables) {
    BOOM_RETURN_IF_ERROR(catalog_.Declare(def));
  }
  for (const Fact& fact : program.facts) {
    Table* table = catalog_.Find(fact.table);
    if (table == nullptr) {
      return InvalidArgument("fact references undeclared table " + fact.table);
    }
    if (table->def().arity() != fact.tuple.size()) {
      return InvalidArgument("fact arity mismatch for " + fact.table);
    }
    table->Insert(fact.tuple);
  }
  for (const TimerDecl& timer : program.timers) {
    timers_.push_back(TimerState{timer.name, timer.period_ms, now_ms_ + timer.period_ms});
  }
  for (const std::string& w : program.watches) {
    AddWatch(w, [](const std::string& table, const Tuple& tuple, bool inserted) {
      BOOM_LOG(Info) << "watch " << (inserted ? "+" : "-") << table << tuple.ToString();
    });
  }
  // Advisory static analysis: at engine level no-producer is only a warning (hosts may
  // Enqueue events from C++), and relations from other installed programs are external.
  {
    AnalyzerOptions aopts;
    aopts.strict_events = false;
    aopts.external_inputs.insert(program.external_inputs.begin(),
                                 program.external_inputs.end());
    aopts.external_outputs.insert(program.external_outputs.begin(),
                                  program.external_outputs.end());
    for (const Program& p : programs_) {
      for (const TableDef& def : p.tables) {
        aopts.external_tables.insert(def.name);
      }
    }
    for (const std::string& name : catalog_.TableNames()) {
      aopts.external_tables.insert(name);
    }
    analyzer_reports_.push_back(AnalyzeProgram(program, aopts));
  }
  programs_.push_back(std::move(program));
  Status status = Recompile();
  if (!status.ok()) {
    programs_.pop_back();
    analyzer_reports_.pop_back();
    Status rollback = Recompile();
    BOOM_CHECK(rollback.ok()) << "rollback recompile failed: " << rollback.ToString();
    return status;
  }
  needs_seed_ = true;
  // The seed tick replays every stored row as a delta; reset incremental accumulators so
  // they are rebuilt once rather than double-counted.
  for (auto& [name, state] : agg_state_) {
    state.accum.clear();
    state.has_input_version = false;
  }
  return Status::Ok();
}

Status Engine::Recompile() {
  std::vector<Rule> all_rules;
  std::vector<std::string> rule_programs;
  // Profiling, tracing, and the dirty-rule scheduler all key rules by (program, rule);
  // a duplicate key would silently merge two rules' counters.
  std::set<std::pair<std::string, std::string>> rule_keys;
  for (const Program& p : programs_) {
    for (const Rule& r : p.rules) {
      if (!rule_keys.emplace(p.name, r.name).second) {
        return InvalidArgument("duplicate rule '" + r.name + "' in program '" + p.name +
                               "'");
      }
      all_rules.push_back(r);
      rule_programs.push_back(p.name);
    }
  }
  PlannerOptions popts;
  if (options_.enable_optimizer) {
    popts.cost_based = true;
    HarvestPlannerStats(&popts.stats);
  }
  Result<CompiledProgram> compiled = CompileRules(all_rules, rule_programs, catalog_, popts);
  if (!compiled.ok()) {
    return compiled.status();
  }
  compiled_ = std::move(compiled).value();
  // Resolve body atoms to table pointers so join steps skip the per-row catalog lookup.
  // Pointers are stable: the catalog stores tables behind unique_ptr and never drops them.
  auto resolve_variant = [this](CompiledVariant& variant) {
    if (!variant.driver.table.empty()) {
      variant.driver.table_ptr = catalog_.Find(variant.driver.table);
    }
    for (CompiledStep& step : variant.steps) {
      if (step.kind == BodyTerm::Kind::kAtom) {
        step.atom.table_ptr = catalog_.Find(step.atom.table);
      }
    }
  };
  // Purity analysis for the parallel fixpoint: a rule may run on a worker thread only if
  // every builtin it can call is pure (impure ones mutate the engine Rng / id counter and
  // must stay in program order on the engine thread).
  std::function<bool(const Expr&)> expr_is_pure = [&](const Expr& e) -> bool {
    if (e.kind == ExprKind::kCall) {
      if (!builtins_.IsPure(e.fn)) {
        return false;
      }
      for (const Expr& arg : e.args) {
        if (!expr_is_pure(arg)) {
          return false;
        }
      }
    }
    return true;
  };
  auto variant_is_pure = [&](const CompiledVariant& variant) {
    for (const CompiledStep& step : variant.steps) {
      if (step.kind == BodyTerm::Kind::kAssign && !expr_is_pure(step.assign_expr)) {
        return false;
      }
      if (step.kind == BodyTerm::Kind::kCondition && !expr_is_pure(step.condition)) {
        return false;
      }
    }
    return true;
  };
  for (CompiledRule& rule : compiled_.rules) {
    for (CompiledVariant& variant : rule.variants) {
      resolve_variant(variant);
    }
    resolve_variant(rule.full_variant);
    rule.parallel_safe = variant_is_pure(rule.full_variant);
    for (const CompiledVariant& variant : rule.variants) {
      rule.parallel_safe = rule.parallel_safe && variant_is_pure(variant);
    }
    for (const CompiledHeadArg& arg : rule.head_args) {
      rule.parallel_safe = rule.parallel_safe && expr_is_pure(arg.expr);
    }
  }
  if (options_.enable_optimizer) {
    // Canonical shared-prefix variants probe tables too; resolve their pointers.
    for (SharedPrefixGroup& group : compiled_.shared_prefixes) {
      resolve_variant(group.canon);
    }
    // Automatic index selection: build every index the chosen plans will probe, so first
    // probes inside a tick never pay a cold O(table) build.
    for (const auto& [table_name, cols] : compiled_.warm_indexes) {
      Table* table = catalog_.Find(table_name);
      if (table != nullptr) {
        table->WarmIndex(cols);
      }
    }
    // Incremental index maintenance rides with the optimizer (it changes probe-result
    // order, which the default byte-stable path must not). The drift snapshot caches Table
    // pointers: PlanDrifted runs at every tick entry, and name lookups there would charge
    // O(tables) map probes per tick to workloads the optimizer never helps. Tables declared
    // after this snapshot (only perf_table's lazy declare) join it at the next recompile.
    planned_rows_.clear();
    for (const std::string& name : catalog_.TableNames()) {
      Table* table = catalog_.Find(name);
      table->set_incremental_index_maintenance(true);
      planned_rows_.emplace_back(table, table->size());
    }
  }
  return Status::Ok();
}

void Engine::HarvestPlannerStats(std::unordered_map<std::string, TableStats>* stats) const {
  for (const std::string& name : catalog_.TableNames()) {
    const Table& table = catalog_.Get(name);
    TableStats ts;
    ts.rows = table.size();
    const size_t arity = table.def().arity();
    ts.distinct.reserve(arity);
    for (size_t col = 0; col < arity; ++col) {
      ts.distinct.push_back(table.DistinctCount(col));
    }
    const uint64_t probes = table.probes();
    ts.probe_hit_ratio =
        probes == 0 ? 1.0
                    : static_cast<double>(table.probe_hits()) / static_cast<double>(probes);
    (*stats)[name] = std::move(ts);
  }
}

bool Engine::PlanDrifted() const {
  for (const auto& [table, planned] : planned_rows_) {
    const uint64_t now_rows = table->size();
    const uint64_t hi = std::max(planned, now_rows);
    const uint64_t lo = std::min(planned, now_rows);
    if (hi >= options_.replan_min_rows &&
        static_cast<double>(lo) * options_.replan_drift_factor < static_cast<double>(hi)) {
      return true;
    }
  }
  return false;
}

std::string Engine::ExplainPlan() const {
  std::ostringstream os;
  os << "plan: " << (compiled_.cost_based ? "cost-based" : "greedy") << ", "
     << compiled_.rules.size() << " rule(s), " << compiled_.num_strata << " stratum(s)\n";
  auto fmt_est = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3g", v);
    return std::string(buf);
  };
  auto atom_str = [](const CompiledAtom& a) {
    std::string s = a.negated ? "!" : "";
    s += a.table;
    s += "(probe:";
    for (size_t i = 0; i < a.probe_cols.size(); ++i) {
      if (i > 0) {
        s += ',';
      }
      s += std::to_string(a.probe_cols[i]);
    }
    s += ')';
    return s;
  };
  auto variant_str = [&](const CompiledVariant& v, const std::string& label) {
    std::string s = "  " + label + ": ";
    s += v.driver_table.empty() ? "<once>" : "scan " + v.driver_table;
    for (const CompiledStep& step : v.steps) {
      s += " -> ";
      switch (step.kind) {
        case BodyTerm::Kind::kAtom:
          s += atom_str(step.atom);
          if (step.est_rows >= 0) {
            s += "~" + fmt_est(step.est_rows);
          }
          break;
        case BodyTerm::Kind::kAssign:
          s += "assign";
          break;
        case BodyTerm::Kind::kCondition:
          s += "cond";
          break;
      }
    }
    if (v.est_cost >= 0) {
      s += "  cost=" + fmt_est(v.est_cost);
    }
    if (v.shared_group >= 0) {
      s += "  shared=#" + std::to_string(v.shared_group);
    }
    return s + "\n";
  };
  for (const CompiledRule& rule : compiled_.rules) {
    os << rule.program << ":" << rule.name << " (stratum " << rule.stratum << ")\n";
    os << variant_str(rule.full_variant, "full");
    for (const CompiledVariant& v : rule.variants) {
      os << variant_str(v, "delta[" + v.driver_table + "]");
    }
  }
  if (!compiled_.warm_indexes.empty()) {
    os << "warm indexes:\n";
    for (const auto& [table, cols] : compiled_.warm_indexes) {
      os << "  " << table << "(";
      for (size_t i = 0; i < cols.size(); ++i) {
        if (i > 0) {
          os << ",";
        }
        os << cols[i];
      }
      os << ")\n";
    }
  }
  if (!compiled_.shared_prefixes.empty()) {
    os << "shared prefixes:\n";
    for (size_t g = 0; g < compiled_.shared_prefixes.size(); ++g) {
      const SharedPrefixGroup& group = compiled_.shared_prefixes[g];
      os << "  #" << g << " stratum " << group.stratum << " driver " << group.driver_table
         << " [" << group.key << "] members:";
      for (const SharedPrefixMember& m : group.members) {
        os << " " << compiled_.rules[m.rule_index].name;
      }
      os << "\n";
    }
  }
  return os.str();
}

Status Engine::Enqueue(const std::string& table, Tuple tuple) {
  const Table* t = catalog_.Find(table);
  if (t == nullptr) {
    return NotFound("enqueue into undeclared table " + table);
  }
  if (t->def().arity() != tuple.size()) {
    return InvalidArgument("enqueue arity mismatch for " + table + ": got " +
                           std::to_string(tuple.size()) + ", want " +
                           std::to_string(t->def().arity()));
  }
  inbox_.emplace_back(table, std::move(tuple));
  ++stats_.tuples_enqueued;
  return Status::Ok();
}

double Engine::NextTimerDeadline() const {
  double next = std::numeric_limits<double>::infinity();
  for (const TimerState& t : timers_) {
    next = std::min(next, t.next_deadline);
  }
  return next;
}

void Engine::AddWatch(const std::string& table, WatchFn fn) {
  watches_[table].push_back(std::move(fn));
}

void Engine::FireWatches(const std::string& table, const Tuple& tuple, bool inserted) {
  if (watches_.empty()) {
    return;  // common case: skip the map lookup entirely
  }
  auto it = watches_.find(table);
  if (it == watches_.end()) {
    return;
  }
  for (const WatchFn& fn : it->second) {
    fn(table, tuple, inserted);
  }
}

void Engine::RecordRuleEval(const CompiledRule& rule, uint64_t tuples, double wall_us,
                            std::map<std::string, uint64_t>& tick_tuples) {
  std::string key = rule.program + ":" + rule.name;
  RuleProfile& profile = rule_profiles_[key];
  if (profile.rule.empty()) {
    profile.program = rule.program;
    profile.rule = rule.name;
  }
  ++profile.evals;
  profile.tuples += tuples;
  profile.wall_us += wall_us;
  tick_tuples[key] += tuples;
}

void Engine::ResetProfile() {
  rule_profiles_.clear();
  fixpoint_profiles_.clear();
}

Status Engine::PublishProfile() {
  if (catalog_.Find("perf_rule") == nullptr) {
    TableDef def;
    def.name = "perf_rule";
    def.columns = {"Program", "Rule", "Evals", "Tuples", "MaxTuplesPerTick", "WallUs"};
    def.key_columns = {0, 1};
    BOOM_RETURN_IF_ERROR(catalog_.Declare(def));
  }
  if (catalog_.Find("perf_fixpoint") == nullptr) {
    TableDef def;
    def.name = "perf_fixpoint";
    def.columns = {"Tick", "NowMs", "Rounds", "Derivs", "WallUs"};
    def.key_columns = {0};
    BOOM_RETURN_IF_ERROR(catalog_.Declare(def));
  }
  if (catalog_.Find("perf_table") == nullptr) {
    TableDef def;
    def.name = "perf_table";
    def.columns = {"Name", "Rows", "Probes", "IndexHits", "Rebuilds"};
    def.key_columns = {0};
    BOOM_RETURN_IF_ERROR(catalog_.Declare(def));
  }
  // Per-table runtime stats, in sorted table order (deterministic publication order).
  for (const std::string& name : catalog_.TableNames()) {
    const Table& t = catalog_.Get(name);
    BOOM_RETURN_IF_ERROR(
        Enqueue("perf_table", Tuple{Value(name), Value(static_cast<int64_t>(t.size())),
                                    Value(static_cast<int64_t>(t.probes())),
                                    Value(static_cast<int64_t>(t.probe_hits())),
                                    Value(static_cast<int64_t>(t.index_rebuilds()))}));
  }
  for (const auto& [key, p] : rule_profiles_) {
    BOOM_RETURN_IF_ERROR(Enqueue(
        "perf_rule", Tuple{Value(p.program), Value(p.rule),
                           Value(static_cast<int64_t>(p.evals)),
                           Value(static_cast<int64_t>(p.tuples)),
                           Value(static_cast<int64_t>(p.max_tuples_per_tick)),
                           Value(p.wall_us)}));
  }
  for (const FixpointProfile& fp : fixpoint_profiles_) {
    BOOM_RETURN_IF_ERROR(Enqueue(
        "perf_fixpoint", Tuple{Value(static_cast<int64_t>(fp.tick)), Value(fp.now_ms),
                               Value(static_cast<int64_t>(fp.rounds)),
                               Value(static_cast<int64_t>(fp.derivations)),
                               Value(fp.wall_us)}));
  }
  return Status::Ok();
}

bool Engine::ApplyLocalInsert(const std::string& table, const Tuple& tuple) {
  Table* t = catalog_.Find(table);
  BOOM_CHECK(t != nullptr) << "insert into undeclared table " << table;
  Table::InsertOutcome outcome = t->Insert(tuple, now_ms_);
  if (outcome == Table::InsertOutcome::kUnchanged) {
    return false;
  }
  tick_new_[table].push_back(tuple);
  FireWatches(table, tuple, /*inserted=*/true);
  return true;
}

Engine::TickResult Engine::Tick(double now_ms) {
  BOOM_CHECK(now_ms >= now_ms_) << "time must be non-decreasing: " << now_ms << " < "
                                << now_ms_;
  now_ms_ = now_ms;
  ctx_.now_ms = now_ms;
  TickResult result;
  evaluator_.ClearErrors();
  tick_new_.clear();

  // Optimizer: deterministic re-plan at the tick boundary when observed cardinalities have
  // drifted past the threshold. The decision reads only table state at tick entry — a pure
  // function of the seeded execution so far — so chaos traces stay byte-identical per seed.
  if (options_.enable_optimizer && !needs_seed_ && PlanDrifted()) {
    Status replanned = Recompile();
    if (replanned.ok()) {
      ++stats_.replans;
    }  // on failure the previous plan stays installed; nothing observable changes
  }

  // Profiling bookkeeping (only touched when profiling is enabled; the disabled cost is one
  // predictable branch per eval site).
  using ProfClock = std::chrono::steady_clock;
  std::map<std::string, uint64_t> tick_tuples;  // per-rule tuples this tick
  ProfClock::time_point tick_start;
  if (profile_) {
    tick_start = ProfClock::now();
  }
  auto prof_elapsed_us = [](ProfClock::time_point t0) {
    return std::chrono::duration<double, std::micro>(ProfClock::now() - t0).count();
  };

  // 0. Soft-state expiry: TTL rows not refreshed recently vanish before anything derives
  // from them this tick. The catalog keeps the (usually short) TTL-table list cached.
  for (Table* table : catalog_.TtlTables()) {
    for (const Tuple& expired : table->ExpireOlderThan(now_ms - table->def().ttl_ms)) {
      FireWatches(table->name(), expired, /*inserted=*/false);
    }
  }

  // 1. Fire due timers as events.
  for (TimerState& timer : timers_) {
    while (timer.next_deadline <= now_ms) {
      inbox_.emplace_back(timer.name, Tuple{Value(options_.address)});
      timer.next_deadline += timer.period_ms;
    }
  }

  // 2. Apply the inbox.
  std::vector<std::pair<std::string, Tuple>> inbox;
  inbox.swap(inbox_);
  for (auto& [table, tuple] : inbox) {
    ApplyLocalInsert(table, tuple);
  }

  // 3. Seed after (re)install: treat every stored tuple as a delta once, so rules derive
  // from pre-existing state.
  if (needs_seed_) {
    for (const std::string& name : catalog_.TableNames()) {
      const Table& t = catalog_.Get(name);
      std::vector<Tuple>& dst = tick_new_[name];
      t.ForEach([&dst](const Tuple& row) { dst.push_back(row); });
    }
  }

  std::vector<Derivation> deletions;
  // Deduplicate network sends within the tick.
  std::set<std::pair<std::pair<std::string, std::string>, Tuple>> sent;
  // Dirty-rule worklist scratch, reused across rounds.
  std::vector<size_t> dirty_worklist;
  std::vector<char> dirty_mark;

  auto apply_derivations = [&](std::vector<Derivation>& derived) {
    for (Derivation& d : derived) {
      ++result.derivations;
      if (d.kind == Derivation::Kind::kDelete) {
        deletions.push_back(std::move(d));
        continue;
      }
      if (d.remote) {
        auto key = std::make_pair(std::make_pair(d.dest, d.table), d.tuple);
        if (sent.insert(key).second) {
          result.sends.push_back(Send{std::move(d.dest), std::move(d.table), d.tuple});
          ++stats_.messages_sent;
        }
        continue;
      }
      if (d.next) {
        // Deferred head: becomes an input of the next timestep.
        inbox_.emplace_back(std::move(d.table), std::move(d.tuple));
        continue;
      }
      ApplyLocalInsert(d.table, d.tuple);
    }
    derived.clear();
  };

  std::vector<Derivation> derived;
  derived.reserve(64);

  // 4. Strata, lowest first, following the compile-time schedule (rules grouped by role at
  // Recompile; no per-tick regrouping).
  for (size_t stratum = 0; stratum < compiled_.schedule.size(); ++stratum) {
    const StratumSchedule& sched = compiled_.schedule[stratum];
    // 4a. Aggregate rules: full recomputation + reconciliation against their prior output.
    // Skipped entirely when none of the rule's input tables changed since the last
    // recomputation — this is what keeps ever-growing audit tables from making every tick
    // O(table size).
    for (size_t rule_idx : sched.agg_rules) {
      const CompiledRule* rule = &compiled_.rules[rule_idx];
      if (rule->incremental_agg && !options_.disable_incremental_aggregates) {
        // Fold only this tick's inserts into running accumulators: O(delta), not O(table).
        auto delta_it = tick_new_.find(rule->body_tables[0]);
        if (delta_it == tick_new_.end() || delta_it->second.empty()) {
          continue;
        }
        ProfClock::time_point t0;
        if (profile_) {
          t0 = ProfClock::now();
        }
        std::vector<std::pair<Tuple, std::vector<Value>>> bindings;
        evaluator_.EvalAggBindings(*rule, delta_it->second, &bindings);
        if (bindings.empty()) {
          if (profile_) {
            RecordRuleEval(*rule, 0, prof_elapsed_us(t0), tick_tuples);
          }
          continue;
        }
        AggState& state = agg_state_[rule->name];
        std::set<Tuple> changed;
        for (auto& [key, inputs] : bindings) {
          std::vector<AggAccum>& accums = state.accum[key];
          accums.resize(inputs.size());
          for (size_t i = 0; i < inputs.size(); ++i) {
            accums[i].Fold(inputs[i]);
          }
          changed.insert(key);
        }
        for (const Tuple& key : changed) {
          const std::vector<AggAccum>& accums = state.accum[key];
          std::vector<Value> vals;
          vals.reserve(rule->head_args.size());
          size_t key_idx = 0;
          size_t agg_idx = 0;
          for (const CompiledHeadArg& arg : rule->head_args) {
            if (arg.agg == AggKind::kNone) {
              vals.push_back(key[key_idx++]);
            } else {
              vals.push_back(accums[agg_idx++].Finish(arg.agg));
            }
          }
          ++result.derivations;
          ApplyLocalInsert(rule->head_table, Tuple(std::move(vals)));
        }
        if (profile_) {
          RecordRuleEval(*rule, changed.size(), prof_elapsed_us(t0), tick_tuples);
        }
        continue;
      }
      {
        AggState& state = agg_state_[rule->name];
        uint64_t version_sum = 0;
        for (const std::string& table : rule->body_tables) {
          const Table* t = catalog_.Find(table);
          if (t != nullptr) {
            version_sum += t->version();
          }
        }
        if (!needs_seed_ && state.has_input_version &&
            state.input_version_sum == version_sum &&
            !options_.disable_aggregate_version_skip) {
          continue;
        }
        state.has_input_version = true;
        state.input_version_sum = version_sum;
      }
      ProfClock::time_point t0;
      if (profile_) {
        t0 = ProfClock::now();
      }
      std::vector<Tuple> head_rows;
      evaluator_.EvalAggregate(*rule, &head_rows);
      AggState& state = agg_state_[rule->name];
      std::map<Tuple, Tuple> new_output;
      Table* head_table = catalog_.Find(rule->head_table);
      BOOM_CHECK(head_table != nullptr);
      for (Tuple& row : head_rows) {
        ++result.derivations;
        if (rule->head_has_location && row[0].is_string() &&
            row[0].as_string() != options_.address) {
          // Remote aggregate result: send when changed since last time.
          Tuple group_key = head_table->KeyOf(row);
          auto it = state.last_sent.find(group_key);
          if (it == state.last_sent.end() || it->second != row) {
            state.last_sent[group_key] = row;
            result.sends.push_back(Send{row[0].as_string(), rule->head_table, row});
            ++stats_.messages_sent;
          }
          continue;
        }
        Tuple group_key = head_table->KeyOf(row);
        new_output.emplace(std::move(group_key), row);
        ApplyLocalInsert(rule->head_table, row);
      }
      // Retract groups this rule derived before but no longer does.
      for (const auto& [key, old_row] : state.last_output) {
        if (new_output.count(key) > 0) {
          continue;
        }
        const Tuple* current = head_table->LookupByKey(key);
        if (current != nullptr && *current == old_row) {
          head_table->EraseByKey(key);
          FireWatches(rule->head_table, old_row, /*inserted=*/false);
        }
      }
      state.last_output = std::move(new_output);
      if (profile_) {
        RecordRuleEval(*rule, head_rows.size(), prof_elapsed_us(t0), tick_tuples);
      }
    }

    // 4b. Driverless rules run once, at seed time.
    if (needs_seed_) {
      for (size_t rule_idx : sched.seed_rules) {
        const CompiledRule* rule = &compiled_.rules[rule_idx];
        ProfClock::time_point t0;
        if (profile_) {
          t0 = ProfClock::now();
        }
        evaluator_.EvalFull(*rule, &derived);
        size_t produced = derived.size();
        apply_derivations(derived);
        if (profile_) {
          RecordRuleEval(*rule, produced, prof_elapsed_us(t0), tick_tuples);
        }
      }
    }

    // 4c. Semi-naive rounds over this stratum.
    std::unordered_map<std::string, size_t> cursor;  // per-table consumed prefix of tick_new_
    // Common-subplan sharing (optimizer, serial engines only): per-round cache of canonical
    // prefix bindings, keyed by shared-prefix group. Cleared every round — the driver delta
    // snapshot it was computed from is per-round state.
    const bool share_prefixes = options_.enable_optimizer && pool_ == nullptr &&
                                !compiled_.shared_prefixes.empty();
    std::unordered_map<int, std::vector<std::vector<Value>>> prefix_cache;
    size_t rounds = 0;
    while (true) {
      if (++rounds > options_.max_rounds_per_tick) {
        result.errors.push_back("fixpoint did not converge within " +
                                std::to_string(options_.max_rounds_per_tick) + " rounds");
        break;
      }
      // Snapshot unconsumed deltas.
      std::map<std::string, std::vector<Tuple>> deltas;
      for (const auto& [table, rows] : tick_new_) {
        size_t& c = cursor[table];
        if (c < rows.size()) {
          deltas[table].assign(rows.begin() + static_cast<long>(c), rows.end());
          c = rows.size();
        }
      }
      if (deltas.empty()) {
        break;
      }
      ++result.rounds;
      prefix_cache.clear();  // cached bindings are valid for one round's delta snapshot only
      // Dirty-rule worklist: only rules with a variant driven by a table that actually
      // received deltas this round, in delta_rules (program) order — the same order, and
      // the same evaluations, as the exhaustive scan, minus the rules that would have been
      // skipped at their deltas.find() anyway.
      const bool exhaustive = options_.disable_dirty_rule_scheduling;
      dirty_worklist.clear();
      if (!exhaustive) {
        dirty_mark.assign(sched.delta_rules.size(), 0);
        for (const auto& [table, rows] : deltas) {
          auto it = sched.delta_rules_by_driver.find(table);
          if (it == sched.delta_rules_by_driver.end()) {
            continue;
          }
          for (size_t pos : it->second) {
            if (!dirty_mark[pos]) {
              dirty_mark[pos] = 1;
              dirty_worklist.push_back(pos);
            }
          }
        }
        std::sort(dirty_worklist.begin(), dirty_worklist.end());
      } else {
        dirty_worklist.resize(sched.delta_rules.size());
        for (size_t i = 0; i < dirty_worklist.size(); ++i) {
          dirty_worklist[i] = i;
        }
      }
      const bool parallel_rules = pool_ != nullptr && !options_.disable_parallel_fixpoint &&
                                  dirty_worklist.size() >= 2;
      auto rule_at = [&](size_t w) -> const CompiledRule& {
        return compiled_.rules[sched.delta_rules[dirty_worklist[w]]];
      };
      for (size_t wi = 0; wi < dirty_worklist.size();) {
        // Grow a conflict-free batch [wi, batch_end): parallel-safe rules none of whose
        // body tables an earlier batch member writes. Deletes apply at tick end and @next
        // heads go to the inbox, so only plain heads count as writes; remote-capable heads
        // count conservatively (a location arg may name this node at runtime).
        size_t batch_end = wi + 1;
        if (parallel_rules && rule_at(wi).parallel_safe) {
          auto writes_table = [](const CompiledRule& r) { return !r.is_delete && !r.is_next; };
          std::vector<const std::string*> written;
          if (writes_table(rule_at(wi))) {
            written.push_back(&rule_at(wi).head_table);
          }
          while (batch_end < dirty_worklist.size()) {
            const CompiledRule& cand = rule_at(batch_end);
            if (!cand.parallel_safe) {
              break;
            }
            bool conflict = false;
            for (const std::string& body : cand.body_tables) {
              for (const std::string* w : written) {
                if (body == *w) {
                  conflict = true;
                  break;
                }
              }
              if (conflict) {
                break;
              }
            }
            if (conflict) {
              break;
            }
            if (writes_table(cand)) {
              written.push_back(&cand.head_table);
            }
            ++batch_end;
          }
        }
        if (batch_end - wi < 2) {
          // Serial path: exactly the pre-parallelism per-rule code, plus (optimizer only)
          // the shared-prefix fast path for variants in a common-subplan group.
          const size_t rule_idx = sched.delta_rules[dirty_worklist[wi]];
          const CompiledRule* rule = &rule_at(wi);
          ProfClock::time_point t0;
          bool evaluated = false;
          if (profile_) {
            t0 = ProfClock::now();
          }
          for (size_t vi = 0; vi < rule->variants.size(); ++vi) {
            const CompiledVariant& variant = rule->variants[vi];
            auto it = deltas.find(variant.driver_table);
            if (it == deltas.end()) {
              continue;
            }
            if (share_prefixes && variant.shared_group >= 0 &&
                it->second.size() >= options_.shared_prefix_min_delta_rows) {
              const SharedPrefixGroup& group =
                  compiled_.shared_prefixes[static_cast<size_t>(variant.shared_group)];
              const SharedPrefixMember* member = nullptr;
              for (const SharedPrefixMember& m : group.members) {
                if (m.rule_index == rule_idx && m.variant_index == vi) {
                  member = &m;
                  break;
                }
              }
              BOOM_CHECK(member != nullptr) << "shared-prefix member lookup failed";
              auto [cached, filled] = prefix_cache.try_emplace(variant.shared_group);
              if (filled) {
                evaluator_.EvalPrefix(group, it->second, &cached->second);
                ++stats_.shared_prefix_evals;
              } else {
                ++stats_.shared_prefix_hits;
              }
              evaluator_.EvalFromPrefixBindings(*rule, variant, group.prefix_steps,
                                                member->slot_map, cached->second, &derived);
              evaluated = true;
              continue;
            }
            evaluator_.EvalFromRows(*rule, variant, it->second, &derived);
            evaluated = true;
          }
          size_t produced = derived.size();
          apply_derivations(derived);
          if (profile_ && evaluated) {
            RecordRuleEval(*rule, produced, prof_elapsed_us(t0), tick_tuples);
          }
          wi = batch_end;
          continue;
        }
        // Parallel batch. Warm every secondary index the batch will probe on this thread,
        // so worker-side Probe calls are pure reads (tables do not mutate mid-batch: the
        // batch is read-only by construction and application happens afterwards, here).
        const size_t batch_size = batch_end - wi;
        ++stats_.parallel_batches;
        for (size_t k = 0; k < batch_size; ++k) {
          for (const CompiledVariant& variant : rule_at(wi + k).variants) {
            if (deltas.find(variant.driver_table) == deltas.end()) {
              continue;
            }
            for (const CompiledStep& step : variant.steps) {
              if (step.kind == BodyTerm::Kind::kAtom && step.atom.table_ptr != nullptr) {
                step.atom.table_ptr->WarmIndex(step.atom.probe_cols);
              }
            }
          }
        }
        while (worker_evaluators_.size() < batch_size) {
          worker_evaluators_.push_back(
              std::make_unique<Evaluator>(&catalog_, &builtins_, &ctx_));
        }
        // Workers fill private buffers; nothing engine-visible mutates until the ordered
        // application below, which replays exactly what the serial loop would have done.
        std::vector<std::vector<Derivation>> batch_derived(batch_size);
        std::vector<char> batch_evaluated(batch_size, 0);
        std::vector<double> batch_wall(batch_size, 0);
        pool_->RunBatch(batch_size, [&](size_t k) {
          const CompiledRule& rule = rule_at(wi + k);
          Evaluator& ev = *worker_evaluators_[k];
          ev.ClearErrors();
          ProfClock::time_point t0;
          if (profile_) {
            t0 = ProfClock::now();
          }
          for (const CompiledVariant& variant : rule.variants) {
            auto it = deltas.find(variant.driver_table);
            if (it == deltas.end()) {
              continue;
            }
            ev.EvalFromRows(rule, variant, it->second, &batch_derived[k]);
            batch_evaluated[k] = 1;
          }
          if (profile_) {
            batch_wall[k] = prof_elapsed_us(t0);
          }
        });
        for (size_t k = 0; k < batch_size; ++k) {
          evaluator_.MergeErrors(*worker_evaluators_[k]);
          size_t produced = batch_derived[k].size();
          apply_derivations(batch_derived[k]);
          if (profile_ && batch_evaluated[k]) {
            RecordRuleEval(rule_at(wi + k), produced, batch_wall[k], tick_tuples);
          }
        }
        wi = batch_end;
      }
    }
  }

  // 5. Apply deletions (tick-boundary semantics).
  for (const Derivation& d : deletions) {
    if (d.remote) {
      continue;  // remote deletes are not part of the language subset
    }
    Table* t = catalog_.Find(d.table);
    if (t != nullptr && t->Erase(d.tuple)) {
      FireWatches(d.table, d.tuple, /*inserted=*/false);
    }
  }

  // 6. Clear events; finish.
  catalog_.ClearEvents();
  needs_seed_ = false;
  for (const std::string& err : evaluator_.errors()) {
    result.errors.push_back(err);
  }
  ++stats_.ticks;
  stats_.derivations += result.derivations;
  if (profile_) {
    for (const auto& [key, n] : tick_tuples) {
      RuleProfile& profile = rule_profiles_[key];
      profile.max_tuples_per_tick = std::max(profile.max_tuples_per_tick, n);
    }
    FixpointProfile fp;
    fp.tick = stats_.ticks;
    fp.now_ms = now_ms;
    fp.rounds = result.rounds;
    fp.derivations = result.derivations;
    fp.wall_us = prof_elapsed_us(tick_start);
    fixpoint_profiles_.push_back(fp);
    if (fixpoint_profiles_.size() > kMaxFixpointProfiles) {
      fixpoint_profiles_.pop_front();
    }
  }
  return result;
}

}  // namespace boom
