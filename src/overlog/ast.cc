#include "src/overlog/ast.h"

#include <algorithm>

#include "src/base/strings.h"

namespace boom {

void Expr::CollectVars(std::set<std::string>* out) const {
  switch (kind) {
    case ExprKind::kConst:
      return;
    case ExprKind::kVar:
      out->insert(var);
      return;
    case ExprKind::kCall:
      for (const Expr& a : args) {
        a.CollectVars(out);
      }
      return;
  }
}

namespace {

bool IsInfixOp(const std::string& fn) {
  static const char* kOps[] = {"+",  "-",  "*",  "/", "%",  "==", "!=",
                               "<",  "<=", ">",  ">=", "&&", "||"};
  for (const char* op : kOps) {
    if (fn == op) {
      return true;
    }
  }
  return false;
}

std::string QuoteValue(const Value& v) {
  if (v.is_string()) {
    return "\"" + v.as_string() + "\"";
  }
  return v.ToString();
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kConst:
      return QuoteValue(constant);
    case ExprKind::kVar:
      // Parser-generated anonymous variables print back as the wildcard they came from,
      // keeping ToString() output round-trippable through the parser.
      return var.rfind("_Anon", 0) == 0 ? "_" : var;
    case ExprKind::kCall: {
      if (args.size() == 2 && IsInfixOp(fn)) {
        return "(" + args[0].ToString() + " " + fn + " " + args[1].ToString() + ")";
      }
      if (fn == "neg" && args.size() == 1) {
        return "-" + args[0].ToString();
      }
      if (fn == "!" && args.size() == 1) {
        return "!" + args[0].ToString();
      }
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const Expr& a : args) {
        parts.push_back(a.ToString());
      }
      return fn + "(" + StrJoin(parts, ", ") + ")";
    }
  }
  return "?";
}

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kNone:
      return "none";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kBottomK:
      return "bottomk";
  }
  return "?";
}

std::string HeadArg::ToString() const {
  if (agg == AggKind::kNone) {
    return expr.ToString();
  }
  if (agg == AggKind::kBottomK) {
    return std::string("bottomk<") + std::to_string(k) + ", " + expr.ToString() + ">";
  }
  return std::string(AggKindName(agg)) + "<" + expr.ToString() + ">";
}

std::string Atom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    std::string s = args[i].ToString();
    if (i == 0 && has_location) {
      s = "@" + s;
    }
    parts.push_back(std::move(s));
  }
  std::string out = table + "(" + StrJoin(parts, ", ") + ")";
  if (negated) {
    out = "notin " + out;
  }
  return out;
}

bool HeadAtom::HasAggregate() const {
  for (const HeadArg& a : args) {
    if (a.agg != AggKind::kNone) {
      return true;
    }
  }
  return false;
}

std::string HeadAtom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (size_t i = 0; i < args.size(); ++i) {
    std::string s = args[i].ToString();
    if (i == 0 && has_location) {
      s = "@" + s;
    }
    parts.push_back(std::move(s));
  }
  return table + "(" + StrJoin(parts, ", ") + ")";
}

std::string BodyTerm::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return atom.ToString();
    case Kind::kAssign:
      return assign.ToString();
    case Kind::kCondition:
      return condition.ToString();
  }
  return "?";
}

std::string Rule::ToString() const {
  std::string out;
  if (!name.empty()) {
    out += name + " ";
  }
  if (is_delete) {
    out += "delete ";
  }
  out += head.ToString();
  if (is_next) {
    out += "@next";
  }
  if (!body.empty()) {
    out += " :- ";
    std::vector<std::string> parts;
    parts.reserve(body.size());
    for (const BodyTerm& t : body) {
      parts.push_back(t.ToString());
    }
    out += StrJoin(parts, ", ");
  }
  out += ";";
  return out;
}

namespace {

std::string TableDeclToString(const TableDef& def, bool is_extern) {
  std::string out = is_extern ? "extern " : "";
  out += (def.kind == TableKind::kEvent) ? "event " : "table ";
  out += def.name + "(" + StrJoin(def.columns, ", ") + ")";
  if (def.kind == TableKind::kTable && !def.key_columns.empty()) {
    std::vector<std::string> keys;
    keys.reserve(def.key_columns.size());
    for (size_t k : def.key_columns) {
      keys.push_back(std::to_string(k));
    }
    out += " keys(" + StrJoin(keys, ", ") + ")";
  }
  if (def.ttl_ms > 0) {
    out += " ttl(" + std::to_string(def.ttl_ms) + ")";
  }
  out += ";\n";
  return out;
}

}  // namespace

std::string Program::ToString() const {
  std::string out = "program " + name + ";\n";
  for (const TableDef& def : externs) {
    out += TableDeclToString(def, /*is_extern=*/true);
  }
  for (const TableDef& def : tables) {
    // Host-fed relations print as externs, so the text names its own coupling contract
    // and round-trips through the analyzer without no-producer diagnostics.
    bool host_fed = std::find(external_inputs.begin(), external_inputs.end(), def.name) !=
                    external_inputs.end();
    out += TableDeclToString(def, /*is_extern=*/host_fed);
  }
  for (const TimerDecl& t : timers) {
    out += "timer " + t.name + "(" + std::to_string(t.period_ms) + ");\n";
  }
  for (const std::string& w : watches) {
    out += "watch " + w + ";\n";
  }
  for (const Fact& f : facts) {
    out += f.table + f.tuple.ToString() + ";\n";
  }
  for (const Rule& r : rules) {
    out += r.ToString() + "\n";
  }
  return out;
}

}  // namespace boom
