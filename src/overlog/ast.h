// Abstract syntax for Overlog programs.
//
// An Overlog program is a set of table/event/timer declarations plus rules:
//
//   r1 fqpath(Path, F) :- file(F, Par, Name, _), fqpath(PPath, Par),
//                         Path := path_join(PPath, Name);
//
// Rule bodies are sequences of terms: positive or negated relational atoms, `Var := expr`
// assignments, and boolean condition expressions. Heads may carry aggregate functions
// (count/sum/min/max/avg/bottomk) and an `@`-location argument that turns the derivation
// into a network send when it differs from the rule's body location.

#ifndef SRC_OVERLOG_AST_H_
#define SRC_OVERLOG_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/overlog/table.h"
#include "src/overlog/value.h"

namespace boom {

enum class ExprKind { kConst, kVar, kCall };

struct Expr {
  ExprKind kind = ExprKind::kConst;
  Value constant;          // kConst
  std::string var;         // kVar
  // kVar: slot index resolved by the planner for compiled rules (-1 = unresolved; the
  // evaluator then falls back to a by-name lookup in the rule's slot map).
  int slot = -1;
  std::string fn;          // kCall: builtin name; operators use their symbol ("+", "==", ...)
  std::vector<Expr> args;  // kCall

  static Expr Const(Value v) {
    Expr e;
    e.kind = ExprKind::kConst;
    e.constant = std::move(v);
    return e;
  }
  static Expr Var(std::string name) {
    Expr e;
    e.kind = ExprKind::kVar;
    e.var = std::move(name);
    return e;
  }
  static Expr Call(std::string fn, std::vector<Expr> args) {
    Expr e;
    e.kind = ExprKind::kCall;
    e.fn = std::move(fn);
    e.args = std::move(args);
    return e;
  }

  bool is_var() const { return kind == ExprKind::kVar; }
  bool is_const() const { return kind == ExprKind::kConst; }

  void CollectVars(std::set<std::string>* out) const;
  std::string ToString() const;
};

enum class AggKind { kNone, kCount, kSum, kMin, kMax, kAvg, kBottomK };

const char* AggKindName(AggKind kind);

// One argument position in a rule head: a plain expression or an aggregate.
struct HeadArg {
  Expr expr;                    // the aggregated expression when agg != kNone
  AggKind agg = AggKind::kNone;
  int64_t k = 0;                // bottomk only
  std::string ToString() const;
};

// A relational atom in a rule body.
struct Atom {
  std::string table;
  std::vector<Expr> args;  // variables or constants (constants act as equality filters)
  bool negated = false;
  bool has_location = false;  // args[0] written as @Var
  std::string ToString() const;
};

struct HeadAtom {
  std::string table;
  std::vector<HeadArg> args;
  bool has_location = false;  // args[0] written as @Var

  bool HasAggregate() const;
  std::string ToString() const;
};

struct Assignment {
  std::string var;
  Expr expr;
  std::string ToString() const { return var + " := " + expr.ToString(); }
};

// A body term in textual order; the planner reorders for evaluability.
struct BodyTerm {
  enum class Kind { kAtom, kAssign, kCondition };
  Kind kind = Kind::kAtom;
  Atom atom;
  Assignment assign;
  Expr condition;

  static BodyTerm MakeAtom(Atom a) {
    BodyTerm t;
    t.kind = Kind::kAtom;
    t.atom = std::move(a);
    return t;
  }
  static BodyTerm MakeAssign(Assignment a) {
    BodyTerm t;
    t.kind = Kind::kAssign;
    t.assign = std::move(a);
    return t;
  }
  static BodyTerm MakeCondition(Expr e) {
    BodyTerm t;
    t.kind = Kind::kCondition;
    t.condition = std::move(e);
    return t;
  }
  std::string ToString() const;
};

struct Rule {
  std::string name;  // optional textual label ("r1"); auto-generated when omitted
  int line = 0;      // 1-based source line of the rule head (0 = built programmatically)
  bool is_delete = false;
  // `head(...)@next :- body` — the derived tuples become visible at the NEXT timestep
  // (Dedalus-style deferral). This is how Overlog programs express state updates guarded by
  // non-monotonic tests on the state being updated (e.g. "create file unless path exists").
  bool is_next = false;
  HeadAtom head;
  std::vector<BodyTerm> body;
  std::string ToString() const;
};

// `timer hb(250);` fires event hb(LocalAddr) every 250 virtual milliseconds.
struct TimerDecl {
  std::string name;
  double period_ms = 0;
};

struct Fact {
  std::string table;
  Tuple tuple;
};

struct Program {
  std::string name;
  std::vector<TableDef> tables;
  // `extern table t(...)` / `extern event e(...)`: schema expectations for relations owned
  // outside this rule set (another installed program, a timer, or a C++ actor feeding the
  // inbox). Install-time behavior is declare-or-verify, same as an ordinary declaration; the
  // analyzer exempts externs from the producer/reader checks.
  std::vector<TableDef> externs;
  std::vector<Rule> rules;
  std::vector<TimerDecl> timers;
  std::vector<std::string> watches;
  std::vector<Fact> facts;
  // Host-coupling contract recorded by ProgramBuilder: events the embedding C++ feeds
  // (Enqueue/network) and relations it reads back (watches, direct catalog lookups).
  // Carried with the program so any later analysis pass sees the same context the
  // builder's strict pass did.
  std::vector<std::string> external_inputs;
  std::vector<std::string> external_outputs;

  // Pretty-printed source form (used by the metaprogramming rewriter and diagnostics).
  std::string ToString() const;
};

}  // namespace boom

#endif  // SRC_OVERLOG_AST_H_
