// Planner: validates parsed Overlog rules against the catalog, orders rule bodies for
// evaluation, builds semi-naive variants, and stratifies the program.
//
// Responsibilities:
//   - arity / declaration checking for every atom
//   - safety: every head variable is bound by a positive atom or an assignment; negated atoms
//     and conditions only run once their variables are bound
//   - join ordering: greedy "most-bound-first" ordering of body terms, one variant per
//     positive atom so the evaluator can drive each variant from that atom's delta
//   - stratification: negation and aggregation edges must not appear in dependency cycles;
//     each rule is assigned the stratum of its head table

#ifndef SRC_OVERLOG_PLANNER_H_
#define SRC_OVERLOG_PLANNER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/overlog/ast.h"
#include "src/overlog/catalog.h"

namespace boom {

// Observed statistics for one table, harvested by the engine from live table state plus the
// Table runtime counters. Everything here is derived deterministically from table contents
// (set-based distinct counts, monotone counters), so re-planning from stats keeps chaos
// traces byte-identical per seed.
struct TableStats {
  uint64_t rows = 0;
  std::vector<uint64_t> distinct;  // per-column distinct counts (size = arity; may be empty)
  double probe_hit_ratio = 1.0;    // probe_hits / probes observed so far
};

// Optional cost-based planning mode (DESIGN.md §13). Off by default: the default plan is
// byte-identical to the greedy most-bound-first ordering this repo has always produced.
struct PlannerOptions {
  // When true: rule bodies are ordered by the cardinality/selectivity cost model (exhaustive
  // permutation enumeration up to 6 positive atoms, cost-greedy beyond), warm_indexes and
  // shared_prefixes are populated, and per-step cost estimates are recorded for
  // `olgrun --explain`.
  bool cost_based = false;
  std::unordered_map<std::string, TableStats> stats;  // table name -> observed stats
};

// One argument position of a compiled atom.
struct CompiledArg {
  bool is_const = false;
  Value constant;
  int slot = -1;            // variable slot (when !is_const)
  bool first_binding = false;  // true when this occurrence binds the slot (vs equality check)
};

struct CompiledAtom {
  std::string table;
  // Resolved by Engine::Recompile after compilation (table addresses are stable: the catalog
  // stores tables behind unique_ptr). Saves a string-hash catalog lookup per join step per
  // row; the evaluator falls back to Catalog::Find when null.
  Table* table_ptr = nullptr;
  bool negated = false;
  std::vector<CompiledArg> args;
  // Columns to probe on (const args + already-bound vars at this point in the ordering).
  std::vector<size_t> probe_cols;
};

// An ordered body term ready for evaluation.
struct CompiledStep {
  BodyTerm::Kind kind = BodyTerm::Kind::kAtom;
  CompiledAtom atom;       // kAtom
  int assign_slot = -1;    // kAssign
  Expr assign_expr;        // kAssign
  Expr condition;          // kCondition
  // Cost-based planning only: estimated bindings alive after this step (-1 = not planned).
  double est_rows = -1;
};

// One join ordering. driver_table names the delta relation this variant is driven by
// (empty for the "full" ordering used at seed time and by aggregate rules).
struct CompiledVariant {
  std::string driver_table;
  CompiledAtom driver;              // meaningful when driver_table is nonempty
  std::vector<CompiledStep> steps;  // remaining terms, in evaluation order
  std::vector<int> bound_slots;     // slots guaranteed bound after all steps (sorted)
  // Cost-based planning only: total estimated cost (sum of intermediate binding counts
  // across positive-atom steps; -1 = planned greedily without a cost model).
  double est_cost = -1;
  // Index into CompiledProgram::shared_prefixes when this variant is a member of a
  // common-subplan group (-1 otherwise). Filled only under cost-based planning.
  int shared_group = -1;
};

struct CompiledHeadArg {
  Expr expr;
  AggKind agg = AggKind::kNone;
  int64_t k = 0;
};

struct CompiledRule {
  std::string name;
  std::string program;
  bool is_delete = false;
  bool is_next = false;
  bool has_agg = false;
  int stratum = 0;

  std::string head_table;
  bool head_is_event = false;
  bool head_has_location = false;
  std::vector<CompiledHeadArg> head_args;

  std::unordered_map<std::string, int> slot_of;  // variable name -> slot
  int num_slots = 0;

  // Semi-naive variants, one per positive body atom (empty for aggregate rules).
  std::vector<CompiledVariant> variants;
  // Ordering that scans the first atom fully; used at seed time and for aggregates.
  CompiledVariant full_variant;
  // True when the body has no positive atoms: evaluated only at seed time.
  bool driverless = false;
  // All tables referenced in the body (positive and negated); lets the engine skip
  // aggregate recomputation when none of them changed.
  std::vector<std::string> body_tables;
  // Exactly one positive atom in the body: aggregate bindings are already distinct per
  // driver row, so the evaluator can skip fingerprint deduplication.
  bool single_positive_atom = false;
  // Aggregate rule whose results can be folded incrementally from driver-table inserts
  // (single-atom body over an insert-only persistent set-semantics table; no bottomk, no
  // remote head). Keeps audit-style rollups O(delta) instead of O(table) per tick.
  bool incremental_agg = false;
  // Every builtin the rule calls (head args, assignments, conditions) is pure, so its
  // evaluation can run on a worker thread without reordering engine state mutations.
  // Filled by Engine::Recompile (the planner has no builtin registry); rules calling
  // f_rand/f_randint/f_unique_id or unannotated custom builtins stay on the engine thread.
  bool parallel_safe = false;
};

// Per-stratum evaluation schedule, built once at compile time so Engine::Tick neither
// regroups rules per tick nor scans every rule per fixpoint round.
struct StratumSchedule {
  // Indexes into CompiledProgram::rules, program order throughout.
  std::vector<size_t> agg_rules;    // aggregate rules, reconciled at stratum entry
  std::vector<size_t> seed_rules;   // driverless non-aggregate rules (seed tick only)
  std::vector<size_t> delta_rules;  // semi-naive rules
  // Driver table -> ascending positions in delta_rules having a variant driven by it. A
  // fixpoint round unions the entries for tables that actually received deltas (the "dirty
  // rules") and evaluates only those, in delta_rules order — exactly the order the
  // exhaustive every-rule loop used, so derivation order (and with it send order, watch
  // order, and chaos schedules) is unchanged.
  std::unordered_map<std::string, std::vector<size_t>> delta_rules_by_driver;
};

// Common-subplan sharing (cost-based planning only): several delta variants in one stratum,
// driven by the same table, whose driver atom plus leading run of kAtom steps are
// structurally identical modulo variable naming. The canonical prefix is evaluated once per
// fixpoint round into a shared binding cache; each member then continues its remaining
// steps from the cached bindings (serial evaluation path only — the parallel fixpoint
// bypasses sharing). Mid-round inserts into prefix-probed tables that a later member would
// have seen without sharing are recovered on the next round by that member's variant driven
// by the mutated table, so the fixpoint is unchanged (DESIGN.md §13).
struct SharedPrefixMember {
  size_t rule_index = 0;      // into CompiledProgram::rules
  size_t variant_index = 0;   // into rules[rule_index].variants
  std::vector<int> slot_map;  // canonical slot -> member rule slot
};

struct SharedPrefixGroup {
  std::string driver_table;
  int stratum = 0;
  size_t prefix_steps = 0;  // kAtom steps after the driver in the prefix (>= 1)
  // Driver + prefix steps with canonical slot numbering (first-use order). All slots in
  // [0, canon_num_slots) are bound after the prefix.
  CompiledVariant canon;
  int canon_num_slots = 0;
  std::vector<SharedPrefixMember> members;  // >= 2, program order
  std::string key;  // human-readable serialization (for --explain / olglint advisories)
};

struct CompiledProgram {
  std::vector<CompiledRule> rules;
  int num_strata = 1;
  std::vector<StratumSchedule> schedule;  // one entry per stratum
  // Cost-based planning only (empty otherwise):
  bool cost_based = false;
  // Every (table, probe columns) pair the chosen plans will probe, sorted + deduped; the
  // engine warms these via Table::WarmIndex right after a successful recompile so first
  // probes inside a tick never pay a cold index build.
  std::vector<std::pair<std::string, std::vector<size_t>>> warm_indexes;
  std::vector<SharedPrefixGroup> shared_prefixes;
};

// Compiles `rules` (typically the union of all installed programs) against tables already
// declared in `catalog`. All referenced tables must be declared. `options` selects the
// optional cost-based planning mode; the default produces the classic greedy plans.
Result<CompiledProgram> CompileRules(const std::vector<Rule>& rules,
                                     const std::vector<std::string>& programs,
                                     const Catalog& catalog,
                                     const PlannerOptions& options = PlannerOptions());

}  // namespace boom

#endif  // SRC_OVERLOG_PLANNER_H_
