#include "src/hdfs_baseline/namenode.h"

#include <algorithm>

#include "src/base/logging.h"
#include "src/base/strings.h"
#include "src/boomfs/protocol.h"

namespace boom {

void HdfsNameNode::OnStart(Cluster& cluster) {
  ++start_epoch_;
  // Chunk locations and DataNode liveness are soft state: after a restart they reflect a
  // world that may no longer exist, so drop them and rebuild from heartbeats/reports —
  // that rebuild window is exactly what safe mode covers.
  chunk_locs_.clear();
  datanodes_.clear();
  safe_mode_ = options_.with_safe_mode;
  safe_mode_since_ = cluster.now();
  ArmFailureCheck(cluster);
  ArmSafeModeCheck(cluster);
  ArmGcCheck(cluster);
}

void HdfsNameNode::ArmGcCheck(Cluster& cluster) {
  if (!options_.with_tombstone_gc) {
    return;
  }
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.gc_check_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    // A tombstone only needs to outlive straggler chunk reports; after gc_tombstone_ms
    // it is dead weight, and under sustained churn an unbounded set is a slow leak.
    for (auto it = dead_chunks_.begin(); it != dead_chunks_.end();) {
      if (cluster.now() - it->second > options_.gc_tombstone_ms) {
        it = dead_chunks_.erase(it);
      } else {
        ++it;
      }
    }
    ArmGcCheck(cluster);
  });
}

void HdfsNameNode::ArmSafeModeCheck(Cluster& cluster) {
  if (!safe_mode_) {
    return;
  }
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.safe_mode_check_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    CheckSafeMode(cluster);
    ArmSafeModeCheck(cluster);
  });
}

void HdfsNameNode::CheckSafeMode(Cluster& cluster) {
  if (!safe_mode_) {
    return;
  }
  size_t total = chunk_file_.size();
  size_t seen = 0;
  for (const auto& [chunk, file] : chunk_file_) {
    auto it = chunk_locs_.find(chunk);
    if (it != chunk_locs_.end() && !it->second.empty()) {
      ++seen;
    }
  }
  double elapsed = cluster.now() - safe_mode_since_;
  bool enough_reports =
      total > 0 && seen * 100 >= total * static_cast<size_t>(
                                            options_.safe_mode_report_frac_pct);
  bool empty_namespace = total == 0 && elapsed > options_.safe_mode_grace_ms;
  bool timed_out = elapsed > options_.safe_mode_timeout_ms;
  if (enough_reports || empty_namespace || timed_out) {
    safe_mode_ = false;
  }
}

void HdfsNameNode::ArmFailureCheck(Cluster& cluster) {
  if (!options_.with_failure_detector) {
    return;
  }
  uint64_t epoch = start_epoch_;
  cluster.ScheduleAfter(options_.failure_check_period_ms, [this, &cluster, epoch] {
    if (epoch != start_epoch_ || !cluster.IsAlive(address())) {
      return;
    }
    CheckFailures(cluster);
    ArmFailureCheck(cluster);
  });
}

const HdfsNameNode::Inode* HdfsNameNode::Resolve(const std::string& path) const {
  int64_t cur = 0;
  for (const std::string& comp : PathComponents(path)) {
    auto it = children_.find({cur, comp});
    if (it == children_.end()) {
      return nullptr;
    }
    cur = it->second;
  }
  auto it = inodes_.find(cur);
  return it == inodes_.end() ? nullptr : &it->second;
}

void HdfsNameNode::Respond(Cluster& cluster, const std::string& client, int64_t req, bool ok,
                           Value payload) {
  cluster.Send(address(), client, kNsResponse,
               Tuple{Value(client), Value(req), Value(ok), std::move(payload)});
}

std::vector<std::string> HdfsNameNode::PickDataNodes(int n) const {
  // Least-loaded placement, same policy as the Overlog rules: order by (chunk count, name).
  std::vector<std::pair<int64_t, std::string>> load;
  load.reserve(datanodes_.size());
  for (const auto& [dn, hb] : datanodes_) {
    int64_t count = 0;
    for (const auto& [chunk, locs] : chunk_locs_) {
      if (locs.count(dn) > 0) {
        ++count;
      }
    }
    load.emplace_back(count, dn);
  }
  std::sort(load.begin(), load.end());
  std::vector<std::string> out;
  for (int i = 0; i < n && i < static_cast<int>(load.size()); ++i) {
    out.push_back(load[static_cast<size_t>(i)].second);
  }
  return out;
}

void HdfsNameNode::HandleRequest(const Message& msg, Cluster& cluster) {
  // (NN, ReqId, Client, Cmd, Path, Arg)
  int64_t req = msg.tuple[1].as_int();
  const std::string& client = msg.tuple[2].as_string();
  const std::string& cmd = msg.tuple[3].as_string();
  const std::string& path = msg.tuple[4].as_string();
  const Value& arg = msg.tuple[5];

  if (cmd == kCmdMkdir || cmd == kCmdCreate) {
    std::string parent = PathDirname(path);
    std::string name = PathBasename(path);
    const Inode* dir = Resolve(parent);
    if (name.empty() || dir == nullptr || !dir->is_dir ||
        children_.count({dir->id, name}) > 0) {
      Respond(cluster, client, req, false, Value(std::string(cmd) + " failed"));
      return;
    }
    int64_t id = MintId();
    inodes_[id] = Inode{id, dir->id, name, cmd == kCmdMkdir};
    children_[{dir->id, name}] = id;
    Respond(cluster, client, req, true, Value());
    return;
  }
  if (cmd == kCmdExists) {
    Respond(cluster, client, req, true, Value(Resolve(path) != nullptr));
    return;
  }
  if (cmd == kCmdLs) {
    const Inode* dir = Resolve(path);
    if (dir == nullptr || !dir->is_dir) {
      Respond(cluster, client, req, false, Value("no such directory"));
      return;
    }
    ValueList names;
    auto it = children_.lower_bound({dir->id, ""});
    for (; it != children_.end() && it->first.first == dir->id; ++it) {
      names.push_back(Value(it->first.second));
    }
    Respond(cluster, client, req, true, Value(std::move(names)));
    return;
  }
  if (cmd == kCmdRm) {
    const Inode* node = Resolve(path);
    if (node == nullptr || node->id == 0) {
      Respond(cluster, client, req, false, Value("rm failed"));
      return;
    }
    auto child_it = children_.lower_bound({node->id, ""});
    if (child_it != children_.end() && child_it->first.first == node->id) {
      Respond(cluster, client, req, false, Value("rm failed"));  // non-empty directory
      return;
    }
    for (int64_t chunk : file_chunks_[node->id]) {
      auto locs_it = chunk_locs_.find(chunk);
      if (locs_it != chunk_locs_.end()) {
        for (const std::string& dn : locs_it->second) {
          cluster.Send(address(), dn, kDnDelete, Tuple{Value(dn), Value(chunk)});
        }
      }
      chunk_file_.erase(chunk);
      chunk_locs_.erase(chunk);
      dead_chunks_[chunk] = cluster.now();
    }
    file_chunks_.erase(node->id);
    children_.erase({node->parent, node->name});
    inodes_.erase(node->id);
    Respond(cluster, client, req, true, Value());
    return;
  }
  if (cmd == kCmdRename && options_.with_rename) {
    // Files only, same semantics as the Overlog nn_rename module: the source must be an
    // existing file, the destination parent an existing directory, and the destination
    // path free. Chunk ownership is keyed by inode id, so it survives untouched.
    const Inode* node = Resolve(path);
    const std::string new_path = arg.as_string();
    const Inode* dir = Resolve(PathDirname(new_path));
    std::string name = PathBasename(new_path);
    if (node == nullptr || node->is_dir || name.empty() || dir == nullptr ||
        !dir->is_dir || children_.count({dir->id, name}) > 0) {
      Respond(cluster, client, req, false, Value("rename failed"));
      return;
    }
    int64_t id = node->id;
    int64_t new_parent = dir->id;
    children_.erase({node->parent, node->name});
    Inode& inode = inodes_[id];
    inode.parent = new_parent;
    inode.name = name;
    children_[{new_parent, name}] = id;
    Respond(cluster, client, req, true, Value());
    return;
  }
  if (cmd == kCmdAddChunk) {
    const Inode* node = Resolve(path);
    std::vector<std::string> dns = PickDataNodes(options_.replication_factor);
    if (node == nullptr || node->is_dir || dns.empty()) {
      Respond(cluster, client, req, false, Value("addchunk failed"));
      return;
    }
    int64_t chunk = MintId();
    file_chunks_[node->id].push_back(chunk);
    chunk_file_[chunk] = node->id;
    ValueList dn_vals;
    for (const std::string& dn : dns) {
      dn_vals.push_back(Value(dn));
    }
    Respond(cluster, client, req, true,
            Value(ValueList{Value(chunk), Value(std::move(dn_vals))}));
    return;
  }
  if (cmd == kCmdChunks) {
    const Inode* node = Resolve(path);
    if (node == nullptr || node->is_dir) {
      Respond(cluster, client, req, false, Value("no such file"));
      return;
    }
    ValueList chunks;
    auto it = file_chunks_.find(node->id);
    if (it != file_chunks_.end()) {
      for (int64_t chunk : it->second) {
        chunks.push_back(Value(chunk));
      }
    }
    Respond(cluster, client, req, true, Value(std::move(chunks)));
    return;
  }
  if (cmd == kCmdLocations) {
    if (safe_mode_) {
      // The location table is still being rebuilt from reports; answering from a partial
      // view would steer clients at replicas we merely have not heard from.
      Respond(cluster, client, req, false, Value("safe mode"));
      return;
    }
    auto it = chunk_locs_.find(arg.as_int());
    if (it == chunk_locs_.end() || it->second.empty()) {
      Respond(cluster, client, req, false, Value("no locations"));
      return;
    }
    ValueList locs;
    for (const std::string& dn : it->second) {
      locs.push_back(Value(dn));
    }
    Respond(cluster, client, req, true, Value(std::move(locs)));
    return;
  }
  if (cmd == kCmdAbandon) {
    // Detach + tombstone a chunk whose write never completed. Idempotent: the client may
    // retry after a lost response, and the chunk may already be gone.
    int64_t chunk = arg.as_int();
    auto owner = chunk_file_.find(chunk);
    if (owner != chunk_file_.end()) {
      auto& order = file_chunks_[owner->second];
      order.erase(std::remove(order.begin(), order.end(), chunk), order.end());
      auto locs_it = chunk_locs_.find(chunk);
      if (locs_it != chunk_locs_.end()) {
        for (const std::string& dn : locs_it->second) {
          cluster.Send(address(), dn, kDnDelete, Tuple{Value(dn), Value(chunk)});
        }
        chunk_locs_.erase(locs_it);
      }
      chunk_file_.erase(owner);
      dead_chunks_[chunk] = cluster.now();
    }
    Respond(cluster, client, req, true, Value());
    return;
  }
  Respond(cluster, client, req, false, Value("unknown command " + cmd));
}

void HdfsNameNode::CheckFailures(Cluster& cluster) {
  if (safe_mode_) {
    return;  // liveness and locations are still warming up; don't act on a partial view
  }
  std::vector<std::string> dead;
  for (const auto& [dn, last_hb] : datanodes_) {
    if (cluster.now() - last_hb > options_.heartbeat_timeout_ms) {
      dead.push_back(dn);
    }
  }
  for (const std::string& dn : dead) {
    datanodes_.erase(dn);
    for (auto& [chunk, locs] : chunk_locs_) {
      locs.erase(dn);
    }
  }
  if (!options_.with_failure_detector) {
    return;
  }
  // Re-replication: copy under-replicated chunks from a live holder to the least-loaded
  // datanode not already holding them.
  for (const auto& [chunk, locs] : chunk_locs_) {
    if (locs.empty() ||
        static_cast<int>(locs.size()) >= options_.replication_factor ||
        chunk_file_.count(chunk) == 0) {
      continue;
    }
    for (const std::string& dn : PickDataNodes(static_cast<int>(datanodes_.size()))) {
      if (locs.count(dn) == 0) {
        const std::string& src = *locs.begin();
        cluster.Send(address(), src, kReplicateCmd,
                     Tuple{Value(src), Value(chunk), Value(dn)});
        break;
      }
    }
  }
}

void HdfsNameNode::OnMessage(const Message& msg, Cluster& cluster) {
  if (msg.table == kNsRequest) {
    HandleRequest(msg, cluster);
    return;
  }
  if (msg.table == kDnHeartbeat) {
    datanodes_[msg.tuple[1].as_string()] = cluster.now();
    return;
  }
  if (msg.table == kDnChunkReport) {
    // A report of a deleted chunk means the DataNode missed the rm-time delete (it was down
    // or the message was lost): re-issue the delete instead of resurrecting the location.
    int64_t chunk = msg.tuple[2].as_int();
    const std::string& dn = msg.tuple[1].as_string();
    if (dead_chunks_.count(chunk) > 0) {
      cluster.Send(address(), dn, kDnDelete, Tuple{Value(dn), Value(chunk)});
      return;
    }
    chunk_locs_[chunk].insert(dn);
    return;
  }
  if (msg.table == kDnCorrupt) {
    // (NN, Dn, ChunkId): the DataNode quarantined a corrupt replica; forget the location
    // so reads stop landing there and re-replication restores the count.
    auto it = chunk_locs_.find(msg.tuple[2].as_int());
    if (it != chunk_locs_.end()) {
      it->second.erase(msg.tuple[1].as_string());
    }
    return;
  }
  BOOM_LOG(Warning) << "HdfsNameNode: unknown message " << msg.table;
}

std::vector<std::string> HdfsNameNode::ChunkLocations(int64_t chunk_id) const {
  auto it = chunk_locs_.find(chunk_id);
  if (it == chunk_locs_.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

}  // namespace boom
