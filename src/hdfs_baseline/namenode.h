// HdfsNameNode: an imperative C++ NameNode implementing the same namespace protocol as the
// BOOM-FS Overlog NameNode. This is the reproduction's stand-in for stock HDFS — the
// comparator for the paper's code-size and performance experiments.

#ifndef SRC_HDFS_BASELINE_NAMENODE_H_
#define SRC_HDFS_BASELINE_NAMENODE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/sim/cluster.h"

namespace boom {

struct HdfsNameNodeOptions {
  int replication_factor = 3;
  double heartbeat_timeout_ms = 2000;
  double failure_check_period_ms = 500;
  bool with_failure_detector = true;
  // Safe mode (same policy as the Overlog NameNode): after a (re)start, chunk locations are
  // soft state rebuilt from reports, so location serving and re-replication are deferred
  // until safe_mode_report_frac_pct percent of owned chunks have a reported location, the
  // namespace has stayed chunk-less for safe_mode_grace_ms, or safe_mode_timeout_ms passes.
  bool with_safe_mode = true;
  double safe_mode_check_period_ms = 200;
  int safe_mode_report_frac_pct = 60;
  double safe_mode_timeout_ms = 5000;
  double safe_mode_grace_ms = 400;
  // Rename support ("rename" command, files only — same semantics as the Overlog
  // nn_rename module). Off by default to match the Overlog twin's default module set.
  bool with_rename = false;
  // Tombstone GC: expire rm/abandon tombstones after gc_tombstone_ms so sustained churn
  // leaves bounded state (the Overlog twin's nn_gc module).
  bool with_tombstone_gc = false;
  double gc_check_period_ms = 1000;
  double gc_tombstone_ms = 10000;
  // When set, minted file/chunk ids carry the salt in the low 20 bits (the Overlog
  // f_unique_id format), so multiple NameNodes over one shared DataNode pool mint from
  // disjoint id spaces. Unset keeps the legacy sequential ids of a solo deployment.
  std::optional<uint64_t> id_salt;
};

class HdfsNameNode : public Actor {
 public:
  HdfsNameNode(std::string address, HdfsNameNodeOptions options)
      : Actor(std::move(address)), options_(std::move(options)) {
    // The root directory.
    inodes_[0] = Inode{0, -1, "", true};
  }

  void OnStart(Cluster& cluster) override;
  void OnMessage(const Message& msg, Cluster& cluster) override;

  // Introspection for tests.
  size_t file_count() const { return inodes_.size(); }
  size_t live_datanodes() const { return datanodes_.size(); }
  bool in_safe_mode() const { return safe_mode_; }
  size_t dead_chunk_count() const { return dead_chunks_.size(); }
  std::vector<std::string> ChunkLocations(int64_t chunk_id) const;

 private:
  struct Inode {
    int64_t id;
    int64_t parent;
    std::string name;
    bool is_dir;
  };

  // Path resolution: walk components from the root. Returns nullptr when missing.
  const Inode* Resolve(const std::string& path) const;
  void ArmFailureCheck(Cluster& cluster);
  void ArmSafeModeCheck(Cluster& cluster);
  void ArmGcCheck(Cluster& cluster);
  void CheckSafeMode(Cluster& cluster);
  void Respond(Cluster& cluster, const std::string& client, int64_t req, bool ok,
               Value payload);
  void HandleRequest(const Message& msg, Cluster& cluster);
  void CheckFailures(Cluster& cluster);
  std::vector<std::string> PickDataNodes(int n) const;
  int64_t MintId() {
    int64_t seq = next_id_++;
    if (!options_.id_salt.has_value()) {
      return seq;
    }
    return (seq << 20) | static_cast<int64_t>(*options_.id_salt & 0xFFFFF);
  }

  HdfsNameNodeOptions options_;
  std::map<int64_t, Inode> inodes_;
  // (parent id, name) -> child id. Doubles as the per-directory listing index.
  std::map<std::pair<int64_t, std::string>, int64_t> children_;
  std::map<int64_t, std::vector<int64_t>> file_chunks_;   // file -> ordered chunks
  std::map<int64_t, int64_t> chunk_file_;                 // chunk -> file
  std::map<int64_t, std::set<std::string>> chunk_locs_;   // chunk -> datanodes
  std::map<int64_t, double> dead_chunks_;  // rm tombstones (gates reports) -> born time
  std::map<std::string, double> datanodes_;               // datanode -> last heartbeat
  int64_t next_id_ = 1;
  uint64_t start_epoch_ = 0;
  bool safe_mode_ = false;
  double safe_mode_since_ = 0;  // virtual time this safe-mode epoch began
};

}  // namespace boom

#endif  // SRC_HDFS_BASELINE_NAMENODE_H_
