// Open-loop arrival injection for the cluster simulator.
//
// Production-traffic experiments model millions of simulated clients; hosting one Actor
// per client would melt the node table and the event queue. Instead the workload layer
// supplies a pull-based arrival source and the driver here walks it with arrival-event
// batching: a small prefetch buffer plus a single in-flight queue event that delivers
// every arrival sharing its timestamp, then re-arms for the next one. Simulator state is
// O(batch) no matter how large the client population is, and arrival times are exact —
// the open-loop property (offered load independent of system response) is preserved.

#ifndef SRC_SIM_OPEN_LOOP_H_
#define SRC_SIM_OPEN_LOOP_H_

#include <cstdint>
#include <functional>

#include "src/sim/cluster.h"

namespace boom {

// One arrival from the workload generator. The simulated client is payload, not a node:
// `deliver` decides which real actor (e.g. a per-tenant submission client) acts on it.
struct OpenLoopArrival {
  double time_ms = 0;
  uint64_t client_id = 0;
  int tenant = 0;
  uint64_t key = 0;
};

struct OpenLoopOptions {
  // Arrivals prefetched from the source per refill (amortizes the generator call).
  int batch = 64;
};

// Pulls arrivals from `next` (false = exhausted; times must be nondecreasing) and invokes
// `deliver` for each at its virtual arrival time. Arrivals already in the past when the
// driver starts are delivered at the current time. Only one queue event is pending at any
// moment, so a million-arrival trace costs the queue nothing up front.
void DriveOpenLoop(Cluster& cluster, std::function<bool(OpenLoopArrival*)> next,
                   std::function<void(const OpenLoopArrival&)> deliver,
                   OpenLoopOptions options = {});

}  // namespace boom

#endif  // SRC_SIM_OPEN_LOOP_H_
