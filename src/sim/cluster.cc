#include "src/sim/cluster.h"

#include <algorithm>
#include <cstdio>

#include "src/base/logging.h"

namespace boom {

namespace {

// Per-message reaction penalty a gray node pays even when it has no service-time model:
// factor f adds (f-1)*kGrayServiceBaseMs ms of queueing per inbound message, so a
// heavily-limping node (f=400) still takes ~40ms to react to each heartbeat or assignment.
constexpr double kGrayServiceBaseMs = 0.1;

std::string Fmt1(const char* fmt, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

Cluster::Cluster(uint64_t seed, ClusterOptions options)
    : options_(options), rng_(seed) {
  if (options_.worker_threads > 1) {
    // Flip tuple refcounts to concurrent mode before any worker thread exists; the flag is
    // sticky for the process, so tuples created earlier are already in the atomic layout.
    Tuple::EnableConcurrentMode();
    worker_pool_ = std::make_unique<ThreadPool>(options_.worker_threads - 1);
  }
}

Engine& Cluster::AddOverlogNode(const std::string& address,
                                std::function<void(Engine&)> init,
                                std::optional<uint64_t> id_salt) {
  BOOM_CHECK(nodes_.count(address) == 0) << "duplicate node " << address;
  Node& node = nodes_[address];
  node.address = address;
  node.engine_seed = rng_.generator()();
  node.id_salt = id_salt;
  EngineOptions opts;
  opts.address = address;
  opts.seed = node.engine_seed;
  opts.id_salt = id_salt;
  opts.enable_optimizer = options_.enable_engine_optimizer;
  node.engine = std::make_unique<Engine>(opts);
  node.init = std::move(init);
  if (node.init) {
    node.init(*node.engine);
  }
  // Give the engine an initial tick (seeds rule evaluation over installed facts) and keep
  // its timer schedule live.
  ScheduleEngineTick(node, now_ms_);
  return *node.engine;
}

void Cluster::AddActor(std::unique_ptr<Actor> actor) {
  const std::string address = actor->address();
  BOOM_CHECK(nodes_.count(address) == 0) << "duplicate node " << address;
  Node& node = nodes_[address];
  node.address = address;
  node.actor = std::move(actor);
  if (started_) {
    Actor* raw = node.actor.get();
    ScheduleAt(now_ms_, [this, raw] { raw->OnStart(*this); });
  }
}

Engine* Cluster::engine(const std::string& address) {
  Node* node = FindNode(address);
  return node == nullptr ? nullptr : node->engine.get();
}

Actor* Cluster::actor(const std::string& address) {
  Node* node = FindNode(address);
  return node == nullptr ? nullptr : node->actor.get();
}

bool Cluster::HasNode(const std::string& address) const {
  return nodes_.count(address) > 0;
}

void Cluster::SetServiceTime(const std::string& address,
                             std::function<double(const Message&)> service_ms) {
  Node* node = FindNode(address);
  BOOM_CHECK(node != nullptr) << "unknown node " << address;
  node->service_ms = std::move(service_ms);
}

double Cluster::ServiceBacklogMs(const std::string& address) const {
  const Node* node = FindNode(address);
  if (node == nullptr) {
    return 0;
  }
  return std::max(0.0, node->busy_until - now_ms_);
}

Cluster::Node* Cluster::FindNode(const std::string& address) {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? nullptr : &it->second;
}

const Cluster::Node* Cluster::FindNode(const std::string& address) const {
  auto it = nodes_.find(address);
  return it == nodes_.end() ? nullptr : &it->second;
}

bool Cluster::LinkBlocked(const std::string& a, const std::string& b) const {
  return blocked_.count({a, b}) > 0 || blocked_.count({b, a}) > 0;
}

namespace {
// Normalized (unordered) link key so faults set on (a,b) apply to (b,a) too.
std::pair<std::string, std::string> LinkKey(const std::string& a, const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}
}  // namespace

const LinkFaults* Cluster::FindLinkFaults(const std::string& a, const std::string& b) const {
  auto it = link_faults_.find(LinkKey(a, b));
  return it == link_faults_.end() ? nullptr : &it->second;
}

void Cluster::SetLinkFaults(const std::string& a, const std::string& b, LinkFaults faults) {
  if (!faults.active()) {
    ClearLinkFaults(a, b);
    return;
  }
  link_faults_[LinkKey(a, b)] = faults;
  Trace("faults", a, b, "set");
}

void Cluster::ClearLinkFaults(const std::string& a, const std::string& b) {
  if (link_faults_.erase(LinkKey(a, b)) > 0) {
    Trace("faults", a, b, "clear");
  }
}

void Cluster::ClearAllLinkFaults() { link_faults_.clear(); }

void Cluster::SetDiskFaults(const std::string& address, DiskFaults faults) {
  if (!faults.active()) {
    ClearDiskFaults(address);
    return;
  }
  disk_faults_[address] = faults;
  Trace("dfaults", address, "", "set");
}

void Cluster::ClearDiskFaults(const std::string& address) {
  if (disk_faults_.erase(address) > 0) {
    Trace("dfaults", address, "", "clear");
  }
}

void Cluster::ClearAllDiskFaults() { disk_faults_.clear(); }

DiskFaults Cluster::disk_faults(const std::string& address) const {
  auto it = disk_faults_.find(address);
  return it == disk_faults_.end() ? DiskFaults{} : it->second;
}

void Cluster::SetNodeSlowdown(const std::string& address, double factor) {
  if (factor <= 1.0) {
    if (node_slowdowns_.erase(address) > 0) {
      Trace("gray", address, "", "clear");
    }
    return;
  }
  node_slowdowns_[address] = factor;
  Trace("gray", address, "", Fmt1("x%.1f", factor));
}

double Cluster::node_slowdown(const std::string& address) const {
  auto it = node_slowdowns_.find(address);
  return it == node_slowdowns_.end() ? 1.0 : it->second;
}

void Cluster::ClearAllNodeSlowdowns() { node_slowdowns_.clear(); }

void Cluster::SetClockSkew(const std::string& address, double skew_ms) {
  if (skew_ms == 0) {
    if (clock_skews_.erase(address) > 0) {
      Trace("skew", address, "", "clear");
    }
    return;
  }
  clock_skews_[address] = skew_ms;
  Trace("skew", address, "", Fmt1("%+.1fms", skew_ms));
}

double Cluster::clock_skew(const std::string& address) const {
  auto it = clock_skews_.find(address);
  return it == clock_skews_.end() ? 0.0 : it->second;
}

void Cluster::ClearAllClockSkews() { clock_skews_.clear(); }

void Cluster::Trace(const char* kind, const std::string& from, const std::string& to,
                    const std::string& detail) {
  if (!trace_) {
    return;
  }
  char head[64];
  std::snprintf(head, sizeof(head), "t=%.3f %s ", now_ms_, kind);
  std::string line = head;
  line += from;
  if (!to.empty()) {
    line += ">";
    line += to;
  }
  if (!detail.empty()) {
    line += " ";
    line += detail;
  }
  trace_(line);
}

double Cluster::SampleLatency() {
  double jitter = latency_.jitter_ms > 0 ? rng_.Uniform(0, latency_.jitter_ms) : 0;
  return latency_.base_ms + jitter;
}

SpanContext Cluster::StartSpan(const std::string& name, const std::string& node,
                               SpanContext parent) {
  if (tracer_ == nullptr) {
    return {};
  }
  return tracer_->StartSpan(name, node, now_ms_, parent);
}

void Cluster::EndSpan(const SpanContext& ctx) {
  if (tracer_ != nullptr) {
    tracer_->EndSpan(ctx, now_ms_);
  }
}

void Cluster::SpanAttr(const SpanContext& ctx, const std::string& key,
                       const std::string& value) {
  if (tracer_ != nullptr) {
    tracer_->AddAttr(ctx, key, value);
  }
}

void Cluster::Send(const std::string& from, const std::string& to, const std::string& table,
                   Tuple tuple, double extra_delay_ms) {
  ++net_stats_.messages;
  const LinkFaults* faults =
      (link_faults_.empty() || from == to) ? nullptr : FindLinkFaults(from, to);
  // All fault sampling is gated on a fault actually being configured for the link so that
  // fault-free runs consume the exact same Rng stream as before the chaos harness existed.
  if (faults != nullptr && faults->drop_prob > 0 && rng_.Bernoulli(faults->drop_prob)) {
    ++net_stats_.dropped_fault;
    Trace("dropF", from, to, table);
    return;
  }
  Message msg{from, to, table, std::move(tuple), {}};
  // The message's span covers the hop from send to processed-at-receiver; the receiver's
  // work (and its sends) parent to it, chaining one operation's causality across nodes.
  msg.span = StartSpan(table, to, active_span_);
  double delay = (from == to ? 0.0 : SampleLatency()) + extra_delay_ms;
  if (faults != nullptr) {
    delay += faults->extra_latency_ms;
  }
  // Per-link FIFO (TCP semantics): jitter must not reorder messages on one link. Protocol
  // correctness can depend on it — e.g. a Paxos promise must not overtake the accepted-value
  // stream sent just before it. A reordered message bypasses the clamp (and does not advance
  // it), modeling a UDP-like link during a degradation window.
  double arrival = now_ms_ + delay;
  double& last = link_last_arrival_[{from, to}];
  if (faults != nullptr && faults->reorder_prob > 0 && rng_.Bernoulli(faults->reorder_prob)) {
    ++net_stats_.reordered;
    arrival += rng_.Uniform(0, std::max(0.001, faults->reorder_window_ms));
  } else {
    arrival = std::max(arrival, last);
    last = arrival;
  }
  if (faults != nullptr && faults->dup_prob > 0 && rng_.Bernoulli(faults->dup_prob)) {
    ++net_stats_.duplicated;
    double dup_arrival =
        arrival + rng_.Uniform(0, std::max(0.001, faults->reorder_window_ms));
    Message copy = msg;
    Trace("dup", from, to, table);
    ScheduleAt(dup_arrival, [this, copy = std::move(copy)]() mutable {
      DeliverMessage(std::move(copy));
    });
  }
  ScheduleAt(arrival, [this, msg = std::move(msg)]() mutable {
    DeliverMessage(std::move(msg));
  });
}

void Cluster::DeliverLocal(const std::string& to, const std::string& table, Tuple tuple,
                           double delay_ms) {
  Message msg{to, to, table, std::move(tuple), {}};
  msg.span = StartSpan(table, to, active_span_);
  ScheduleAfter(delay_ms, [this, msg = std::move(msg)]() mutable {
    DeliverMessage(std::move(msg));
  });
}

void Cluster::DeliverMessage(Message msg) {
  Node* src = FindNode(msg.from);
  Node* dst = FindNode(msg.to);
  if (dst == nullptr || !dst->alive || (src != nullptr && !src->alive && msg.from != msg.to)) {
    ++net_stats_.dropped_dead;
    Trace("dropD", msg.from, msg.to, msg.table);
    SpanAttr(msg.span, "drop", "dead");
    EndSpan(msg.span);
    return;
  }
  if (LinkBlocked(msg.from, msg.to)) {
    ++net_stats_.dropped_partition;
    Trace("dropP", msg.from, msg.to, msg.table);
    SpanAttr(msg.span, "drop", "partition");
    EndSpan(msg.span);
    return;
  }
  Trace("dlv", msg.from, msg.to, msg.table);
  // Busy-server semantics: messages wait for the server to free up. A gray node's service
  // times inflate by its slowdown; nodes with no service model get a small per-message
  // penalty so a limping node is slow to *react*, not just slow to compute. Both paths are
  // untouched (and Rng-silent) when no slowdown is set.
  double service = dst->service_ms ? dst->service_ms(msg) : 0.0;
  if (!node_slowdowns_.empty()) {
    auto slow = node_slowdowns_.find(msg.to);
    if (slow != node_slowdowns_.end()) {
      service = service * slow->second + (slow->second - 1.0) * kGrayServiceBaseMs;
    }
  }
  if (service > 0) {
    double start = std::max(now_ms_, dst->busy_until);
    double done = start + service;
    if (done > now_ms_) {
      dst->busy_until = done;
      ScheduleAt(done, [this, msg = std::move(msg)]() mutable {
        ProcessDelivered(std::move(msg));
      });
      return;
    }
  }
  ProcessDelivered(std::move(msg));
}

// Runs the receiver's processing of a delivered message. The message's span is made the
// active context so anything the handler sends or schedules is causally chained to it, and
// it ends here — covering transit plus any busy-server wait. (EndSpan is idempotent, so a
// fault-duplicated copy cannot stretch the original span.)
void Cluster::ProcessDelivered(Message msg) {
  Node* node = FindNode(msg.to);
  if (node == nullptr || !node->alive) {
    ++net_stats_.dropped_dead;
    SpanAttr(msg.span, "drop", "dead");
    EndSpan(msg.span);
    return;
  }
  SpanScope scope(*this, msg.span);
  if (node->actor) {
    node->actor->OnMessage(msg, *this);
    EndSpan(msg.span);
    return;
  }
  if (node->engine) {
    Status s = node->engine->Enqueue(msg.table, std::move(msg.tuple));
    if (!s.ok()) {
      BOOM_LOG(Warning) << "drop message to " << msg.to << ": " << s.ToString();
      EndSpan(msg.span);
      return;
    }
    // The tick event scheduled here captures this message's context, so the rules it fires
    // (and the sends they produce) join this trace. When several messages coalesce into one
    // tick, the tick is attributed to the first scheduler's context.
    ScheduleEngineTick(*node, now_ms_);
  }
  EndSpan(msg.span);
}

void Cluster::ScheduleAt(double time_ms, std::function<void()> fn) {
  BOOM_CHECK(time_ms >= now_ms_) << "cannot schedule into the past";
  queue_.push(Event{time_ms, seq_++, std::move(fn), active_span_});
}

void Cluster::ScheduleAfter(double delay_ms, std::function<void()> fn) {
  ScheduleAt(now_ms_ + std::max(0.0, delay_ms), std::move(fn));
}

void Cluster::ScheduleEngineTick(Node& node, double time_ms) {
  if (!node.engine || !node.alive) {
    return;
  }
  if (node.scheduled_tick >= 0 && node.scheduled_tick <= time_ms) {
    return;  // an earlier-or-equal tick is already pending
  }
  node.scheduled_tick = time_ms;
  std::string address = node.address;
  BOOM_CHECK(time_ms >= now_ms_) << "cannot schedule into the past";
  Event ev{time_ms, seq_++, [this, address] { RunEngineTick(address); }, active_span_};
  ev.node = address;
  queue_.push(std::move(ev));
}

void Cluster::RunEngineTick(const std::string& address) {
  Node* node = FindNode(address);
  if (node == nullptr || !node->alive || !node->engine) {
    return;
  }
  if (node->scheduled_tick < 0 || node->scheduled_tick > now_ms_) {
    return;  // stale event (tick was rescheduled or node restarted)
  }
  node->scheduled_tick = -1;
  // Clock skew: the engine sees cluster time + skew, clamped so its clock never runs
  // backwards — removing a positive skew freezes the node's clock until real time catches
  // up. Timer deadlines reported by the engine are in its (skewed) timebase and are
  // converted back when scheduling the next tick.
  double skew = clock_skews_.empty() ? 0.0 : clock_skew(address);
  double tick_time = std::max(now_ms_ + skew, node->engine->now());
  Engine::TickResult result = node->engine->Tick(tick_time);
  for (const std::string& err : result.errors) {
    BOOM_LOG(Warning) << address << ": " << err;
  }
  for (Engine::Send& send : result.sends) {
    Send(address, send.dest, send.table, std::move(send.tuple));
  }
  double next_timer = node->engine->NextTimerDeadline();
  if (next_timer < std::numeric_limits<double>::infinity()) {
    next_timer -= skew;
    // Timer-driven ticks are periodic background work, not a consequence of whatever
    // message context this tick ran under — schedule them with a cleared context so, e.g.,
    // the NameNode's heartbeat sweep does not get stitched into some client's write trace.
    SpanScope clear(*this, SpanContext{});
    ScheduleEngineTick(*node, std::max(next_timer, now_ms_));
  }
  if (node->engine->HasQueuedInput()) {
    // Queued-input follow-ups continue draining this tick's inbox: inherit its context.
    ScheduleEngineTick(*node, now_ms_);
  }
}

void Cluster::KillNode(const std::string& address) {
  Node* node = FindNode(address);
  BOOM_CHECK(node != nullptr) << "unknown node " << address;
  node->alive = false;
  node->scheduled_tick = -1;
  Trace("kill", address, "", "");
}

void Cluster::RestartNode(const std::string& address, bool fresh_state) {
  Node* node = FindNode(address);
  BOOM_CHECK(node != nullptr) << "unknown node " << address;
  Trace("restart", address, "", fresh_state ? "fresh" : "durable");
  node->alive = true;
  node->busy_until = now_ms_;
  if (node->engine && fresh_state) {
    EngineOptions opts;
    opts.address = address;
    opts.seed = node->engine_seed + 1;
    opts.id_salt = node->id_salt;
    opts.enable_optimizer = options_.enable_engine_optimizer;
    node->engine = std::make_unique<Engine>(opts);
    if (node->init) {
      node->init(*node->engine);
    }
  }
  node->scheduled_tick = -1;
  if (node->engine) {
    ScheduleEngineTick(*node, now_ms_);
  }
  if (node->actor) {
    Actor* raw = node->actor.get();
    ScheduleAt(now_ms_, [this, raw] { raw->OnStart(*this); });
  }
}

bool Cluster::IsAlive(const std::string& address) const {
  const Node* node = FindNode(address);
  return node != nullptr && node->alive;
}

void Cluster::BlockLink(const std::string& a, const std::string& b) {
  blocked_.insert({a, b});
  Trace("block", a, b, "");
}

void Cluster::UnblockLink(const std::string& a, const std::string& b) {
  blocked_.erase({a, b});
  blocked_.erase({b, a});
  Trace("unblock", a, b, "");
}

void Cluster::ClearBlockedLinks() { blocked_.clear(); }

void Cluster::StartActorsIfNeeded() {
  if (started_) {
    return;
  }
  started_ = true;
  for (auto& [address, node] : nodes_) {
    if (node.actor) {
      Actor* raw = node.actor.get();
      ScheduleAt(now_ms_, [this, raw] { raw->OnStart(*this); });
    }
  }
}

void Cluster::RunUntil(double until_ms) {
  StartActorsIfNeeded();
  while (!queue_.empty() && queue_.top().time <= until_ms) {
    if (worker_pool_ != nullptr && !queue_.top().node.empty()) {
      RunTickBatch();
      continue;
    }
    Event ev = queue_.top();
    queue_.pop();
    BOOM_CHECK(ev.time >= now_ms_);
    now_ms_ = ev.time;
    active_span_ = ev.ctx;
    ev.fn();
    active_span_ = {};
  }
  now_ms_ = std::max(now_ms_, until_ms);
}

bool Cluster::RunUntilIdle(double max_ms) {
  StartActorsIfNeeded();
  while (!queue_.empty()) {
    if (queue_.top().time > max_ms) {
      now_ms_ = max_ms;
      return false;
    }
    if (worker_pool_ != nullptr && !queue_.top().node.empty()) {
      RunTickBatch();
      continue;
    }
    Event ev = queue_.top();
    queue_.pop();
    now_ms_ = ev.time;
    active_span_ = ev.ctx;
    ev.fn();
    active_span_ = {};
  }
  return true;
}

void Cluster::RunTickBatch() {
  // Collect the maximal run of same-time tick events for distinct nodes. The run stops at
  // a time change, at an ordinary closure (its side effects interleave with tick
  // post-processing in the serial order), or at a second tick for a node already batched
  // (serial semantics let it run as a queued-input follow-up after the first tick's
  // post-processing, so it must observe that post-processing first).
  const double batch_time = queue_.top().time;
  std::vector<Event> batch;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (top.time != batch_time || top.node.empty()) {
      break;
    }
    bool duplicate = false;
    for (const Event& taken : batch) {
      if (taken.node == top.node) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      break;
    }
    batch.push_back(queue_.top());
    queue_.pop();
  }
  BOOM_CHECK(batch_time >= now_ms_);
  now_ms_ = batch_time;
  if (batch.size() == 1) {
    // Lone tick: the exact serial path (RunEngineTick does pre-check + tick + post).
    active_span_ = batch[0].ctx;
    batch[0].fn();
    active_span_ = {};
    return;
  }
  // Pre-checks in event order on the coordinator; they read and write only per-node state.
  struct PendingTick {
    Node* node = nullptr;
    double tick_time = 0;
    double skew = 0;
    bool run = false;
    Engine::TickResult result;
  };
  std::vector<PendingTick> pending(batch.size());
  ++parallel_tick_batches_;
  for (size_t i = 0; i < batch.size(); ++i) {
    Node* node = FindNode(batch[i].node);
    if (node == nullptr || !node->alive || !node->engine) {
      continue;
    }
    if (node->scheduled_tick < 0 || node->scheduled_tick > now_ms_) {
      continue;  // stale event (tick was rescheduled or node restarted)
    }
    node->scheduled_tick = -1;
    double skew = clock_skews_.empty() ? 0.0 : clock_skew(batch[i].node);
    pending[i].node = node;
    pending[i].skew = skew;
    pending[i].tick_time = std::max(now_ms_ + skew, node->engine->now());
    pending[i].run = true;
  }
  // Engine ticks run concurrently: each touches only its own engine (sends surface in the
  // returned TickResult; delivery always goes through a future queue event, so no tick in
  // this batch could have observed another's output even in the serial order).
  worker_pool_->RunBatch(batch.size(), [&](size_t i) {
    if (pending[i].run) {
      pending[i].result = pending[i].node->engine->Tick(pending[i].tick_time);
    }
  });
  // Post-processing in event order on the coordinator: identical Rng draws, event seq
  // assignments, trace lines, and span bookkeeping as serial execution of the batch.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!pending[i].run) {
      continue;
    }
    Node* node = pending[i].node;
    active_span_ = batch[i].ctx;
    for (const std::string& err : pending[i].result.errors) {
      BOOM_LOG(Warning) << node->address << ": " << err;
    }
    for (Engine::Send& send : pending[i].result.sends) {
      Send(node->address, send.dest, send.table, std::move(send.tuple));
    }
    double next_timer = node->engine->NextTimerDeadline();
    if (next_timer < std::numeric_limits<double>::infinity()) {
      next_timer -= pending[i].skew;
      // Background timer ticks get a cleared context, as in RunEngineTick.
      SpanScope clear(*this, SpanContext{});
      ScheduleEngineTick(*node, std::max(next_timer, now_ms_));
    }
    if (node->engine->HasQueuedInput()) {
      ScheduleEngineTick(*node, now_ms_);
    }
    active_span_ = {};
  }
}

}  // namespace boom
