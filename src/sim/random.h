// Seeded random distributions for the cluster simulator. All simulator randomness flows
// through one Rng so every experiment is reproducible from its seed.

#ifndef SRC_SIM_RANDOM_H_
#define SRC_SIM_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace boom {

class Rng {
 public:
  explicit Rng(uint64_t seed) : gen_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(gen_);
  }

  // Exponential with the given mean.
  double Exponential(double mean) {
    std::exponential_distribution<double> d(1.0 / mean);
    return d(gen_);
  }

  // Lognormal parameterized by its median and shape sigma (long right tail for task
  // durations, as observed in MapReduce clusters).
  double LogNormal(double median, double sigma) {
    std::lognormal_distribution<double> d(std::log(median), sigma);
    return d(gen_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  // Picks k distinct indices from [0, n).
  std::vector<size_t> Sample(size_t n, size_t k) {
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) {
      idx[i] = i;
    }
    for (size_t i = 0; i < k && i < n; ++i) {
      size_t j = i + static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n - i - 1)));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(std::min(n, k));
    return idx;
  }

  std::mt19937_64& generator() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace boom

#endif  // SRC_SIM_RANDOM_H_
