// Cluster: a deterministic discrete-event simulation of a distributed system.
//
// A cluster hosts named nodes. A node is either an Overlog node (an Engine whose network
// sends are routed as simulated messages) or a native Actor (imperative C++, used for data
// planes, clients, and the Hadoop/HDFS baselines). Virtual time advances only through the
// event queue; everything is reproducible from the cluster seed.
//
// Fault injection: nodes can be killed (messages to/from them are dropped, their engines
// stop ticking) and links can be blocked to emulate network partitions. Per-node service
// times model a busy server: inbound messages queue and are processed serially, which is
// what makes throughput saturate in the scale-out experiments.

#ifndef SRC_SIM_CLUSTER_H_
#define SRC_SIM_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "src/base/thread_pool.h"
#include "src/overlog/engine.h"
#include "src/sim/random.h"
#include "src/telemetry/span.h"

namespace boom {

class Cluster;

struct Message {
  std::string from;
  std::string to;
  std::string table;
  Tuple tuple;
  // Causal context: the span representing this message's network hop (invalid when no
  // tracer is attached). The receiver's work — actor handlers, the engine tick that drains
  // the inbox, and any sends they make — is parented to it.
  SpanContext span;
};

// A native (imperative) node.
class Actor {
 public:
  explicit Actor(std::string address) : address_(std::move(address)) {}
  virtual ~Actor() = default;

  const std::string& address() const { return address_; }

  // Called once when the simulation starts (first RunUntil), at time 0.
  virtual void OnStart(Cluster& cluster) {}
  virtual void OnMessage(const Message& msg, Cluster& cluster) = 0;

 private:
  std::string address_;
};

struct LatencyModel {
  double base_ms = 0.5;    // one-way propagation
  double jitter_ms = 0.2;  // uniform [0, jitter)
};

// Per-link fault model (the chaos harness's degradation primitives). Applied symmetrically
// to messages traversing the link in either direction; all sampling draws from the cluster
// Rng, so a degraded run is still reproducible from the cluster seed. Self-sends are never
// degraded (a node's loopback does not cross the network).
struct LinkFaults {
  double drop_prob = 0;         // iid message loss
  double dup_prob = 0;          // message delivered a second time
  double reorder_prob = 0;      // message may overtake others (bypasses the FIFO clamp)
  double reorder_window_ms = 4; // extra delay sampled for reordered / duplicated copies
  double extra_latency_ms = 0;  // latency spike added to every traversal

  bool active() const {
    return drop_prob > 0 || dup_prob > 0 || reorder_prob > 0 || extra_latency_ms > 0;
  }
};

// Per-node disk fault model (the chaos harness's storage-degradation primitives). The
// cluster only stores the knobs; storage actors (DataNodes) consult them at store/serve
// time, sampling from the cluster Rng so degraded runs stay seed-reproducible.
struct DiskFaults {
  double corrupt_prob = 0;  // chance a freshly stored chunk is silently mangled at rest
  double slow_ms = 0;       // extra per-operation disk latency (slow/failing spindle)

  bool active() const { return corrupt_prob > 0 || slow_ms > 0; }
};

struct ClusterOptions {
  // Number of threads used to run same-timestamp engine ticks of distinct nodes
  // concurrently (1 = serial dispatch, the exact historical event loop). Engine::Tick is
  // the only thing that moves off the coordinator: per-event pre-checks and all
  // post-processing — Rng sampling, Send routing, trace lines, span bookkeeping, tick
  // rescheduling — replay in event (seq) order on the coordinator thread, so event
  // schedules, Rng streams, and chaos traces are byte-identical at any thread count.
  // Watch callbacks installed on hosted engines fire on worker threads; they must touch
  // only engine-local state or thread-safe sinks (the telemetry registry qualifies).
  size_t worker_threads = 1;
  // Enable the cost-based optimizer on every hosted engine (join reordering, index
  // warming, shared prefixes, tick-boundary re-planning). Off by default: the optimizer
  // preserves fixpoints but may change derivation order, so the seed-pinned chaos traces
  // are recorded against the greedy planner.
  bool enable_engine_optimizer = false;
};

class Cluster {
 public:
  explicit Cluster(uint64_t seed, ClusterOptions options = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  double now() const { return now_ms_; }
  Rng& rng() { return rng_; }
  void set_latency(LatencyModel m) { latency_ = m; }

  // --- topology ---

  // Creates an Overlog node. `init` installs programs on the engine; it is re-run if the
  // node is restarted with fresh state. `id_salt` overrides the engine's f_unique_id salt
  // (used by replicated state machines that must mint identical ids).
  Engine& AddOverlogNode(const std::string& address,
                         std::function<void(Engine&)> init = nullptr,
                         std::optional<uint64_t> id_salt = std::nullopt);
  // Registers a native actor node.
  void AddActor(std::unique_ptr<Actor> actor);

  Engine* engine(const std::string& address);
  // The native actor at `address` (nullptr for Overlog nodes / unknown addresses). Callers
  // downcast to the concrete actor type they registered.
  Actor* actor(const std::string& address);
  bool HasNode(const std::string& address) const;

  // Serial service time for inbound messages at `address` (0 = infinitely fast server).
  void SetServiceTime(const std::string& address,
                      std::function<double(const Message&)> service_ms);
  // Milliseconds of queued work ahead of a fresh arrival at `address` right now (0 for an
  // idle or unknown node). Admission controllers sample this as their load signal.
  double ServiceBacklogMs(const std::string& address) const;

  // --- messaging & scheduling ---

  // Sends a tuple from one node to another with sampled network latency (plus extra_delay).
  void Send(const std::string& from, const std::string& to, const std::string& table,
            Tuple tuple, double extra_delay_ms = 0);
  // Delivers into a local engine's inbox at the given virtual time (no network latency).
  void DeliverLocal(const std::string& to, const std::string& table, Tuple tuple,
                    double delay_ms = 0);

  void ScheduleAt(double time_ms, std::function<void()> fn);
  void ScheduleAfter(double delay_ms, std::function<void()> fn);

  // --- fault injection ---

  void KillNode(const std::string& address);
  // Revives a node. With fresh_state, an Overlog node gets a brand-new engine and its init
  // function re-runs (crash-recovery semantics); otherwise state is retained.
  void RestartNode(const std::string& address, bool fresh_state = true);
  bool IsAlive(const std::string& address) const;

  // Symmetric link block (partition building block).
  void BlockLink(const std::string& a, const std::string& b);
  void UnblockLink(const std::string& a, const std::string& b);
  void ClearBlockedLinks();

  // Symmetric link degradation (drop/duplicate/reorder/latency-spike). Replaces any faults
  // previously set on the link; a default-constructed LinkFaults clears them.
  void SetLinkFaults(const std::string& a, const std::string& b, LinkFaults faults);
  void ClearLinkFaults(const std::string& a, const std::string& b);
  void ClearAllLinkFaults();

  // Per-node disk degradation (corruption-at-rest, slow disk). Replaces any faults
  // previously set on the node; a default-constructed DiskFaults clears them.
  void SetDiskFaults(const std::string& address, DiskFaults faults);
  void ClearDiskFaults(const std::string& address);
  void ClearAllDiskFaults();
  // The faults currently set on `address` (all-zero when none).
  DiskFaults disk_faults(const std::string& address) const;

  // Gray failure (limplock): the node stays alive and keeps heartbeating, but every unit
  // of work it does is `factor`x slower. Inbound message service times are inflated here
  // (nodes with no service model get a small per-message penalty so the limp is visible at
  // all), and compute-owning actors (TaskTrackers) consult node_slowdown() for their task
  // durations. Factor 1.0 clears. Fault-free runs never touch the map, so behavior and the
  // Rng stream are byte-identical to builds that predate gray failures.
  void SetNodeSlowdown(const std::string& address, double factor);
  double node_slowdown(const std::string& address) const;  // 1.0 when unset
  void ClearAllNodeSlowdowns();

  // Clock skew: the node's Overlog engine sees f_now() = cluster time + skew_ms. Engine
  // clocks must never run backwards, so removing a positive skew freezes the node's clock
  // until real time catches up (exactly how a step-down NTP correction looks to a process
  // that clamps monotonically). Skew 0 clears. Only Overlog nodes are affected.
  void SetClockSkew(const std::string& address, double skew_ms);
  double clock_skew(const std::string& address) const;  // 0 when unset
  void ClearAllClockSkews();

  // Observability hook for the chaos harness: every network/fault event is reported as one
  // formatted text line (fixed-precision times, no addresses of heap objects), so two runs
  // with the same seed must produce byte-identical traces.
  using TraceFn = std::function<void(const std::string& line)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  // --- causal tracing ---

  // Attaches a span tracer (not owned; must outlive the cluster or be detached). When set,
  // every message send starts a span parented to the context active at send time, and the
  // active context follows deliveries, actor handlers, and engine ticks — so one client op
  // becomes one trace across every node it touches. When unset (the default), all tracing
  // calls are no-ops, message spans stay invalid, and — because tracing never samples the
  // cluster Rng or adds events — the event order and Rng stream are byte-identical to an
  // untraced run of the same seed.
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }
  Tracer* tracer() const { return tracer_; }

  // The span context of the event currently being executed (invalid between events or when
  // no tracer is attached). Sends and ScheduleAt/ScheduleAfter capture it automatically.
  SpanContext active_span() const { return active_span_; }

  // Convenience wrappers that no-op without a tracer. StartSpan with a default (invalid)
  // parent starts a new root trace — use it for top-level operations (a client write, a
  // job submission); pass active_span() to continue the current causal chain instead.
  SpanContext StartSpan(const std::string& name, const std::string& node,
                        SpanContext parent = {});
  void EndSpan(const SpanContext& ctx);
  void SpanAttr(const SpanContext& ctx, const std::string& key, const std::string& value);

  // RAII: makes `ctx` the active context for the current C++ scope, so sends and scheduled
  // callbacks issued inside it are parented to `ctx`. Restores the previous context on exit.
  class SpanScope {
   public:
    SpanScope(Cluster& cluster, SpanContext ctx)
        : cluster_(cluster), prev_(cluster.active_span_) {
      cluster_.active_span_ = ctx;
    }
    ~SpanScope() { cluster_.active_span_ = prev_; }
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

   private:
    Cluster& cluster_;
    SpanContext prev_;
  };

  // --- execution ---

  // Runs all events with time <= until_ms; virtual time ends at until_ms.
  void RunUntil(double until_ms);
  // Runs until the queue drains or max_ms is reached. Returns true when drained. Nodes with
  // periodic Overlog timers never drain; use RunUntil with those.
  bool RunUntilIdle(double max_ms);

  struct NetStats {
    uint64_t messages = 0;
    uint64_t dropped_dead = 0;
    uint64_t dropped_partition = 0;
    uint64_t dropped_fault = 0;  // lost to LinkFaults::drop_prob
    uint64_t duplicated = 0;
    uint64_t reordered = 0;
  };
  const NetStats& net_stats() const { return net_stats_; }

 private:
  struct Node {
    std::string address;
    bool alive = true;
    // Exactly one of engine/actor is set.
    std::unique_ptr<Engine> engine;
    std::function<void(Engine&)> init;
    std::unique_ptr<Actor> actor;
    uint64_t engine_seed = 0;
    std::optional<uint64_t> id_salt;
    // Engine tick scheduling.
    double scheduled_tick = -1;  // earliest pending tick event time, -1 if none
    // Busy-server modeling.
    std::function<double(const Message&)> service_ms;
    double busy_until = 0;
  };

  struct Event {
    double time;
    uint64_t seq;
    std::function<void()> fn;
    SpanContext ctx;  // active span captured at scheduling time, restored when fn runs
    // Engine-tick marker: the owning node's address (empty for ordinary closures). Lets
    // the parallel dispatcher batch same-time ticks of distinct nodes without inspecting
    // the type-erased fn.
    std::string node;
    bool operator>(const Event& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  Node* FindNode(const std::string& address);
  const Node* FindNode(const std::string& address) const;
  bool LinkBlocked(const std::string& a, const std::string& b) const;
  const LinkFaults* FindLinkFaults(const std::string& a, const std::string& b) const;
  void Trace(const char* kind, const std::string& from, const std::string& to,
             const std::string& detail);
  double SampleLatency();
  void DeliverMessage(Message msg);
  void ProcessDelivered(Message msg);
  void ScheduleEngineTick(Node& node, double time_ms);
  void RunEngineTick(const std::string& address);
  void StartActorsIfNeeded();
  // Parallel dispatch: pops the maximal run of same-time tick events for distinct nodes
  // off the queue top, runs Engine::Tick for them on the pool, then post-processes in
  // event order. Caller guarantees worker_pool_ is set and queue_.top() is a tick event.
  void RunTickBatch();

 public:
  // Multi-node batches dispatched to the worker pool so far. 0 when worker_threads == 1;
  // tests assert it moved to prove parallel dispatch engaged rather than degenerating to
  // size-1 batches.
  uint64_t parallel_tick_batches() const { return parallel_tick_batches_; }

 private:
  ClusterOptions options_;
  std::unique_ptr<ThreadPool> worker_pool_;
  uint64_t parallel_tick_batches_ = 0;
  Rng rng_;
  LatencyModel latency_;
  std::map<std::string, Node> nodes_;
  std::map<std::pair<std::string, std::string>, double> link_last_arrival_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::set<std::pair<std::string, std::string>> blocked_;
  std::map<std::pair<std::string, std::string>, LinkFaults> link_faults_;
  std::map<std::string, DiskFaults> disk_faults_;
  std::map<std::string, double> node_slowdowns_;
  std::map<std::string, double> clock_skews_;
  TraceFn trace_;
  Tracer* tracer_ = nullptr;
  SpanContext active_span_;
  double now_ms_ = 0;
  uint64_t seq_ = 0;
  bool started_ = false;
  NetStats net_stats_;
};

}  // namespace boom

#endif  // SRC_SIM_CLUSTER_H_
