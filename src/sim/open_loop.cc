#include "src/sim/open_loop.h"

#include <deque>
#include <memory>

namespace boom {

namespace {

struct DriverState {
  std::function<bool(OpenLoopArrival*)> next;
  std::function<void(const OpenLoopArrival&)> deliver;
  std::deque<OpenLoopArrival> buffer;
  int batch = 64;
  bool exhausted = false;
};

void Refill(DriverState& state) {
  while (!state.exhausted && static_cast<int>(state.buffer.size()) < state.batch) {
    OpenLoopArrival arrival;
    if (!state.next(&arrival)) {
      state.exhausted = true;
      break;
    }
    state.buffer.push_back(arrival);
  }
}

void Arm(Cluster& cluster, const std::shared_ptr<DriverState>& state) {
  if (state->buffer.empty()) {
    return;
  }
  double when = std::max(state->buffer.front().time_ms, cluster.now());
  cluster.ScheduleAt(when, [&cluster, state] {
    // Deliver the head and every buffered arrival due by now (identical or earlier
    // timestamps coalesce into this one event — the batching part).
    while (!state->buffer.empty() && state->buffer.front().time_ms <= cluster.now()) {
      OpenLoopArrival arrival = state->buffer.front();
      state->buffer.pop_front();
      state->deliver(arrival);
    }
    Refill(*state);
    Arm(cluster, state);
  });
}

}  // namespace

void DriveOpenLoop(Cluster& cluster, std::function<bool(OpenLoopArrival*)> next,
                   std::function<void(const OpenLoopArrival&)> deliver,
                   OpenLoopOptions options) {
  auto state = std::make_shared<DriverState>();
  state->next = std::move(next);
  state->deliver = std::move(deliver);
  state->batch = std::max(1, options.batch);
  Refill(*state);
  Arm(cluster, state);
}

}  // namespace boom
