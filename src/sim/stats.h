// Small statistics helpers used by benchmarks: percentiles and CDF series.

#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <string>
#include <vector>

namespace boom {

// p in [0, 100]. Nearest-rank percentile; empty input yields 0.
inline double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0;
  }
  std::sort(xs.begin(), xs.end());
  double rank = (p / 100.0) * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1 - frac) + xs[hi] * frac;
}

// Returns (value, cumulative fraction) pairs at each sample, for CDF plots.
inline std::vector<std::pair<double, double>> Cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<std::pair<double, double>> out;
  out.reserve(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    out.emplace_back(xs[i], static_cast<double>(i + 1) / static_cast<double>(xs.size()));
  }
  return out;
}

struct Summary {
  double p10 = 0, p25 = 0, p50 = 0, p75 = 0, p90 = 0, p99 = 0, max = 0, mean = 0;
  size_t n = 0;
};

inline Summary Summarize(const std::vector<double>& xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) {
    return s;
  }
  s.p10 = Percentile(xs, 10);
  s.p25 = Percentile(xs, 25);
  s.p50 = Percentile(xs, 50);
  s.p75 = Percentile(xs, 75);
  s.p90 = Percentile(xs, 90);
  s.p99 = Percentile(xs, 99);
  s.max = *std::max_element(xs.begin(), xs.end());
  double sum = 0;
  for (double x : xs) {
    sum += x;
  }
  s.mean = sum / static_cast<double>(xs.size());
  return s;
}

}  // namespace boom

#endif  // SRC_SIM_STATS_H_
