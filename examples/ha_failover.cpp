// HA failover demo: three NameNode replicas coordinated by the Overlog Paxos program. We
// write files, murder the primary mid-workload, and watch the cluster elect a new leader
// and keep serving — with the metadata identical on every surviving replica.

#include <iostream>

#include "src/boomfs/ha.h"

using boom::Cluster;
using boom::Value;

namespace {

std::string LeaderSeenBy(Cluster& cluster, const std::string& node) {
  const boom::Table* t = cluster.engine(node)->catalog().Find("leader");
  if (t == nullptr) {
    return "?";
  }
  const boom::Tuple* row = t->LookupByKey(boom::Tuple{Value(1)});
  return row == nullptr ? "?" : (*row)[1].as_string();
}

}  // namespace

int main() {
  Cluster cluster(2025);
  boom::HaFsOptions options;
  options.num_replicas = 3;
  options.num_datanodes = 4;
  boom::HaFsHandles handles = SetupHaFs(cluster, options);
  boom::SyncFs fs(cluster, handles.client, /*timeout_ms=*/120000);

  cluster.RunUntil(3000);
  std::cout << "replicas:";
  for (const std::string& r : handles.replicas) {
    std::cout << " " << r;
  }
  std::cout << "\nleader (seen by " << handles.replicas[1]
            << "): " << LeaderSeenBy(cluster, handles.replicas[1]) << "\n\n";

  std::cout << "mkdir /prod            -> " << (fs.Mkdir("/prod") ? "ok" : "FAIL") << "\n";
  std::cout << "write /prod/config     -> "
            << (fs.WriteFile("/prod/config", "replicas=3; consensus=paxos") ? "ok" : "FAIL")
            << "\n";

  std::cout << "\n!!! killing primary " << handles.replicas[0] << " at t=" << cluster.now()
            << "ms\n";
  cluster.KillNode(handles.replicas[0]);
  cluster.RunUntil(cluster.now() + 4000);
  std::cout << "new leader (seen by " << handles.replicas[2]
            << "): " << LeaderSeenBy(cluster, handles.replicas[2]) << "\n\n";

  std::string data;
  std::cout << "read /prod/config      -> "
            << (fs.ReadFile("/prod/config", &data) ? "ok: \"" + data + "\"" : "FAIL") << "\n";
  std::cout << "mkdir /prod/after      -> " << (fs.Mkdir("/prod/after") ? "ok" : "FAIL")
            << "\n";
  std::cout << "exists /prod/after     -> " << (fs.Exists("/prod/after") ? "yes" : "no")
            << "\n";

  // Show the replicated log length on the survivors.
  for (size_t i = 1; i < handles.replicas.size(); ++i) {
    std::cout << handles.replicas[i] << " decided log entries: "
              << cluster.engine(handles.replicas[i])->catalog().Get("decided").size()
              << "\n";
  }
  return 0;
}
