// End-to-end BOOM stack demo: store a document in BOOM-FS, then run a *real* wordcount
// MapReduce job scheduled by the BOOM-MR Overlog JobTracker, and print the top words.
// Everything in the control plane — FS metadata and job scheduling — is Overlog rules.

#include <algorithm>
#include <iostream>
#include <sstream>

#include "src/boomfs/boomfs.h"
#include "src/boommr/boommr.h"

using boom::Cluster;
using boom::JobSpec;
using boom::KvPair;

namespace {

constexpr char kDocument[] =
    "data centric programming makes distributed systems simple "
    "declarative rules replace imperative state machines "
    "the overlog rules derive the state and the messages "
    "boom analytics rebuilt hadoop and hdfs from declarative rules "
    "rules over data beat code over state";

}  // namespace

int main() {
  Cluster cluster(7);

  // 1. A BOOM-FS instance to hold the input.
  boom::FsSetupOptions fs_options;
  fs_options.kind = boom::FsKind::kBoomFs;
  fs_options.num_datanodes = 3;
  fs_options.chunk_size = 64;
  boom::FsHandles fs_handles = SetupFs(cluster, fs_options);
  boom::SyncFs fs(cluster, fs_handles.client);
  cluster.RunUntil(1200);

  if (!fs.Mkdir("/in") || !fs.WriteFile("/in/doc.txt", kDocument)) {
    std::cerr << "failed to load input into BOOM-FS\n";
    return 1;
  }
  std::string stored;
  if (!fs.ReadFile("/in/doc.txt", &stored) || stored != kDocument) {
    std::cerr << "input round-trip failed\n";
    return 1;
  }
  std::cout << "stored /in/doc.txt in BOOM-FS (" << stored.size() << " bytes)\n";

  // 2. A BOOM-MR instance; split the stored bytes into map inputs (one per chunk size).
  boom::MrSetupOptions mr_options;
  mr_options.kind = boom::MrKind::kBoomMr;
  mr_options.num_trackers = 4;
  boom::MrHandles mr = SetupMr(cluster, mr_options);

  JobSpec job;
  job.job_id = mr.client->NextJobId();
  job.client = mr.client->address();
  // Whitespace-safe splits: cut at word boundaries near the chunk size.
  std::istringstream words(stored);
  std::string word;
  std::string split;
  while (words >> word) {
    split += word + " ";
    if (split.size() >= fs_options.chunk_size) {
      job.map_inputs.push_back(split);
      split.clear();
    }
  }
  if (!split.empty()) {
    job.map_inputs.push_back(split);
  }
  job.num_maps = static_cast<int>(job.map_inputs.size());
  job.num_reduces = 2;
  job.map_fn = [](const std::string& input, std::vector<KvPair>* out) {
    std::istringstream is(input);
    std::string w;
    while (is >> w) {
      out->emplace_back(w, "1");
    }
  };
  job.reduce_fn = [](const std::string& key, const std::vector<std::string>& values) {
    return key + " " + std::to_string(values.size()) + "\n";
  };
  job.duration_ms = [](const boom::TaskRef&, const std::string&) { return 250.0; };

  int64_t job_id = job.job_id;
  std::cout << "submitting wordcount: " << job.num_maps << " maps, " << job.num_reduces
            << " reduces, scheduled by the Overlog JobTracker...\n";
  double finish = RunJobSync(cluster, mr, std::move(job));
  if (finish < 0) {
    std::cerr << "job did not complete\n";
    return 1;
  }
  std::cout << "job " << job_id << " finished at t=" << finish << "ms (virtual)\n\n";

  // 3. Collect and rank the output.
  std::istringstream out(mr.data_plane->JobOutput(job_id));
  std::vector<std::pair<int, std::string>> counts;
  std::string w;
  int n;
  while (out >> w >> n) {
    counts.emplace_back(-n, w);
  }
  std::sort(counts.begin(), counts.end());
  std::cout << "top words:\n";
  for (size_t i = 0; i < counts.size() && i < 8; ++i) {
    std::cout << "  " << counts[i].second << "  " << -counts[i].first << "\n";
  }
  return 0;
}
