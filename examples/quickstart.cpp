// Quickstart: the Overlog engine in ~60 lines.
//
// Declares a link graph, derives transitive reachability and per-node out-degrees with four
// rules, feeds a few edges in at runtime, and prints the results. This is the minimal
// "hello, declarative networking" program from the P2/BOOM lineage.

#include <iostream>

#include "src/overlog/engine.h"

int main() {
  boom::EngineOptions options;
  options.address = "demo";
  boom::Engine engine(options);

  boom::Status status = engine.InstallSource(R"(
    program quickstart;

    table link(From, To);
    table reach(From, To);
    table out_degree(Node, N) keys(0);

    // Base graph.
    link("a", "b");
    link("b", "c");
    link("c", "d");

    // Transitive closure, the classic recursive query.
    r1 reach(X, Y) :- link(X, Y);
    r2 reach(X, Z) :- link(X, Y), reach(Y, Z);

    // Aggregation: fan-out per node.
    r3 out_degree(X, count<Y>) :- link(X, Y);
  )");
  if (!status.ok()) {
    std::cerr << "install failed: " << status.ToString() << "\n";
    return 1;
  }

  engine.Tick(0);  // derive from the base facts

  std::cout << "reach after base facts:\n";
  engine.catalog().Get("reach").ForEach([](const boom::Tuple& row) {
    std::cout << "  " << row.ToString() << "\n";
  });

  // Feed a new edge at runtime; the engine updates incrementally (semi-naive deltas).
  std::cout << "\nadding link(d, a) — closing the cycle...\n";
  status = engine.Enqueue("link", boom::Tuple{boom::Value("d"), boom::Value("a")});
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  engine.Tick(1);

  std::cout << "reach is now complete (" << engine.catalog().Get("reach").size()
            << " pairs):\n";
  engine.catalog().Get("out_degree").ForEach([](const boom::Tuple& row) {
    std::cout << "  out_degree" << row.ToString() << "\n";
  });
  return 0;
}
