// Chord DHT in Overlog — the engine generalizes beyond BOOM: this is P2's original
// declarative-networking demo. Eight nodes join through a bootstrap, the ring stabilizes
// itself with four classic rules, and lookups route around successor pointers.

#include <algorithm>
#include <iostream>

#include "src/chord/chord_program.h"

using boom::ChordId;
using boom::Cluster;

int main() {
  Cluster cluster(1010);
  std::vector<std::string> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back("node" + std::to_string(i));
  }
  SetupChordRing(cluster, nodes);

  std::cout << "ring ids:\n";
  std::vector<std::pair<int64_t, std::string>> sorted;
  for (const std::string& n : nodes) {
    sorted.emplace_back(ChordId(n), n);
  }
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [id, n] : sorted) {
    std::cout << "  " << n << "  id=" << id << "\n";
  }

  std::cout << "\nstabilizing...\n";
  cluster.RunUntil(20000);
  std::cout << "successor pointers after stabilization:\n";
  for (const auto& [id, n] : sorted) {
    std::cout << "  " << n << " -> " << SuccessorOf(cluster, n) << "\n";
  }

  std::cout << "\nlookups (key -> owner, hops; keys chosen just below each node's id):\n";
  for (const auto& [id, n] : sorted) {
    int hops = -1;
    int64_t key = id - 1;
    std::string owner = LookupSync(cluster, nodes[0], key, &hops);
    std::cout << "  " << key << " -> " << owner << "  (" << hops << " hops)"
              << (owner == n ? "" : "  UNEXPECTED") << "\n";
  }
  std::cout << "\nand one key outside every id (wraps to the ring minimum):\n";
  int hops = -1;
  std::string owner = LookupSync(cluster, nodes[3], 60000, &hops);
  std::cout << "  60000 -> " << owner << "  (" << hops << " hops)\n";
  return 0;
}
