// BOOM-FS demo: a simulated cluster with an Overlog NameNode, four DataNodes, and a client.
// Builds a small directory tree, writes and reads real bytes through chunk pipelines, shows
// replication, then deletes a file — narrating each step. Run it to watch an HDFS-workalike
// whose entire metadata plane is the Datalog program in src/boomfs/nn_program.cc.

#include <iostream>

#include "src/boomfs/boomfs.h"
#include "src/boomfs/protocol.h"

using boom::Cluster;
using boom::FsKind;
using boom::SyncFs;
using boom::Value;

int main() {
  Cluster cluster(42);
  boom::FsSetupOptions options;
  options.kind = FsKind::kBoomFs;
  options.num_datanodes = 4;
  options.replication_factor = 3;
  options.chunk_size = 24;  // tiny chunks so a short file spans several
  boom::FsHandles handles = SetupFs(cluster, options);
  SyncFs fs(cluster, handles.client);

  cluster.RunUntil(1200);  // let DataNodes register
  std::cout << "cluster up: NameNode=" << handles.namenode << ", "
            << handles.datanodes.size() << " DataNodes\n\n";

  std::cout << "mkdir /users           -> " << (fs.Mkdir("/users") ? "ok" : "FAIL") << "\n";
  std::cout << "mkdir /users/alice     -> " << (fs.Mkdir("/users/alice") ? "ok" : "FAIL")
            << "\n";
  std::cout << "mkdir /users/alice (2) -> "
            << (fs.Mkdir("/users/alice") ? "ok" : "rejected (already exists)") << "\n\n";

  const std::string payload =
      "Declarative programming: the NameNode holding this file is a Datalog program.";
  std::cout << "write /users/alice/notes.txt (" << payload.size() << " bytes, "
            << options.chunk_size << "-byte chunks) -> "
            << (fs.WriteFile("/users/alice/notes.txt", payload) ? "ok" : "FAIL") << "\n";

  std::string read_back;
  bool ok = fs.ReadFile("/users/alice/notes.txt", &read_back);
  std::cout << "read it back            -> " << (ok && read_back == payload ? "ok" : "FAIL")
            << "\n";

  Value chunks;
  fs.Op(boom::kCmdChunks, "/users/alice/notes.txt", &chunks);
  std::cout << "file spans " << chunks.as_list().size() << " chunks\n\n";

  std::vector<std::string> names;
  fs.Ls("/users/alice", &names);
  std::cout << "ls /users/alice:";
  for (const std::string& name : names) {
    std::cout << " " << name;
  }
  std::cout << "\n";

  // Peek straight into the NameNode's relational state.
  boom::Engine* nn = cluster.engine(handles.namenode);
  std::cout << "\nNameNode metadata (the fqpath view, derived by a recursive rule):\n";
  nn->catalog().Get("fqpath").ForEach([](const boom::Tuple& row) {
    std::cout << "  fqpath" << row.ToString() << "\n";
  });

  std::cout << "\nrm /users/alice/notes.txt -> "
            << (fs.Rm("/users/alice/notes.txt") ? "ok" : "FAIL") << "\n";
  std::cout << "exists after rm           -> "
            << (fs.Exists("/users/alice/notes.txt") ? "yes (FAIL)" : "no") << "\n";
  return 0;
}
