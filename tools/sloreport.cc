// sloreport: run the multi-tenant production-traffic experiment and print the per-tenant
// SLO report (p50/p99/p999 job latency) plus the fair-share slot metrics.
//
//   sloreport [--policy fifo|late|fair|cap] [--tenants N] [--clients N] [--zipf S]
//             [--seed N] [--horizon MS] [--trackers N] [--json]
//
// The run is deterministic in the flags: same invocation, same report. --json emits the
// machine-readable form bench/fig_tenancy.cc and external dashboards consume.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/base/logging.h"
#include "src/telemetry/slo.h"
#include "src/workload/tenancy.h"

namespace boom {
namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: sloreport [--policy fifo|late|fair|cap] [--tenants N] "
               "[--clients N] [--zipf S] [--seed N] [--horizon MS] [--trackers N] "
               "[--json]\n");
}

bool ParsePolicy(const std::string& name, MrPolicy* out) {
  if (name == "fifo") {
    *out = MrPolicy::kFifo;
  } else if (name == "late") {
    *out = MrPolicy::kLate;
  } else if (name == "fair") {
    *out = MrPolicy::kFairShare;
  } else if (name == "cap") {
    *out = MrPolicy::kCapacity;
  } else {
    return false;
  }
  return true;
}

int Run(int argc, char** argv) {
  TenancyOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--policy") {
      if (!ParsePolicy(next(), &options.policy)) {
        Usage();
        return 2;
      }
    } else if (arg == "--tenants") {
      options.num_tenants = std::atoi(next());
    } else if (arg == "--clients") {
      options.num_clients = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--zipf") {
      options.zipf_s = std::atof(next());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--horizon") {
      options.horizon_ms = std::atof(next());
    } else if (arg == "--trackers") {
      options.num_trackers = std::atoi(next());
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }
  if (options.num_tenants > 1 &&
      static_cast<size_t>(options.num_tenants) != options.tenant_weights.size()) {
    // Re-derive weights for non-default tenant counts: geometric 2:1 decay.
    options.tenant_weights.clear();
    double w = 1.0;
    for (int t = 0; t < options.num_tenants; ++t, w /= 2) {
      options.tenant_weights.push_back(w);
    }
  }

  MetricsRegistry::Global().Reset();
  Cluster cluster(options.seed);
  TenancyWorkload workload(cluster, options);
  double deadline = options.horizon_ms + 60000;
  cluster.RunUntil(options.horizon_ms);
  while (workload.total_completed() < workload.total_submitted() &&
         cluster.now() < deadline) {
    cluster.RunUntil(cluster.now() + 500);
  }

  SloReport slo = BuildSloReport(MetricsRegistry::Global());
  TenancyFairness fair = workload.Fairness();
  if (json) {
    std::string out = slo.ToJson();
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  ",\n  \"policy\": \"%s\", \"arrivals\": %llu, \"completed\": %llu,"
                  " \"slot_share_ratio\": %.3f, \"contended_samples\": %llu\n}",
                  MrPolicyName(options.policy),
                  static_cast<unsigned long long>(workload.arrivals()),
                  static_cast<unsigned long long>(workload.total_completed()),
                  fair.slot_share_ratio,
                  static_cast<unsigned long long>(fair.contended_samples));
    BOOM_CHECK(out.size() >= 2 && out.back() == '}');
    out.resize(out.size() - 2);  // splice the run summary into the report object
    out += buf;
    std::printf("%s\n", out.c_str());
  } else {
    std::printf("policy=%s arrivals=%llu completed=%llu/%llu\n",
                MrPolicyName(options.policy),
                static_cast<unsigned long long>(workload.arrivals()),
                static_cast<unsigned long long>(workload.total_completed()),
                static_cast<unsigned long long>(workload.total_submitted()));
    std::printf("%s", slo.ToText().c_str());
    std::printf("mean_running:");
    for (double m : fair.mean_running) {
      std::printf(" %.2f", m);
    }
    std::printf("\nslot_share_ratio=%.3f over %llu contended samples (of %llu)\n",
                fair.slot_share_ratio,
                static_cast<unsigned long long>(fair.contended_samples),
                static_cast<unsigned long long>(fair.total_samples));
  }
  return 0;
}

}  // namespace
}  // namespace boom

int main(int argc, char** argv) { return boom::Run(argc, argv); }
