// olgrun: load and execute an Overlog program from one or more .olg files.
//
//   olgrun program.olg [more.olg ...] [--until MS] [--dump table1,table2] [--check]
//
// Multiple files are concatenated through ProgramBuilder into a single program: later
// files see the tables of earlier ones, and the analyzer vets the composition before it
// reaches the engine. With --check the program is analyzed and never run (olglint with
// run-mode flags). The program runs on a single local engine: timers fire in virtual
// time, `watch`ed tables print as they change, and the selected tables (default: all)
// are dumped at the end. See olg/ for example programs.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "src/base/strings.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/module.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: olgrun <program.olg> [more.olg ...] [--until MS] [--dump t1,...]\n"
               "  --until MS   advance virtual time to MS, firing timers (default 1000)\n"
               "  --dump LIST  dump only these tables at exit (default: all non-empty)\n"
               "  --trace      install the metaprogrammed tracing rewrite (trace_* tables)\n"
               "  --profile    per-rule profile: evals, tuples, wall time per rule\n"
               "  --threads N  parallel fixpoint worker threads (default 1 = serial);\n"
               "               results are bit-identical at any thread count\n"
               "  --optimize   enable the cost-based optimizer (join reordering, index\n"
               "               warming, shared prefixes, tick-boundary re-planning)\n"
               "  --explain    print the compiled plan (join orders, cost estimates,\n"
               "               warm indexes, shared prefixes) after install and at exit\n"
               "  --check      analyze only (strict): print diagnostics, do not run\n");
}

void PrintRuleProfile(const boom::Engine& engine) {
  std::vector<const boom::Engine::RuleProfile*> rules;
  for (const auto& [key, profile] : engine.rule_profiles()) {
    rules.push_back(&profile);
  }
  std::sort(rules.begin(), rules.end(),
            [](const boom::Engine::RuleProfile* a, const boom::Engine::RuleProfile* b) {
              if (a->wall_us != b->wall_us) {
                return a->wall_us > b->wall_us;
              }
              return std::tie(a->program, a->rule) < std::tie(b->program, b->rule);
            });
  std::printf("rule profile (%zu rules):\n", rules.size());
  std::printf("  %-40s  %8s  %8s  %9s  %10s\n", "RULE", "EVALS", "TUPLES", "MAX/TICK",
              "WALL_US");
  for (const boom::Engine::RuleProfile* r : rules) {
    std::string name = r->program + ":" + r->rule;
    std::printf("  %-40s  %8llu  %8llu  %9llu  %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(r->evals),
                static_cast<unsigned long long>(r->tuples),
                static_cast<unsigned long long>(r->max_tuples_per_tick), r->wall_us);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  std::vector<std::string> paths;
  double until_ms = 1000;
  bool trace = false;
  bool profile = false;
  bool check_only = false;
  bool optimize = false;
  bool explain = false;
  size_t threads = 1;
  std::vector<std::string> dump_tables;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--until" && i + 1 < argc) {
      until_ms = std::strtod(argv[++i], nullptr);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<size_t>(std::max(1L, std::strtol(argv[++i], nullptr, 10)));
    } else if (arg == "--dump" && i + 1 < argc) {
      dump_tables = boom::StrSplitSkipEmpty(argv[++i], ',');
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--optimize") {
      optimize = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    Usage();
    return 2;
  }

  // Compose the input files into one program. The builder threads the accumulated table
  // declarations through, so a later file can use relations an earlier one declared.
  boom::ProgramBuilder builder("");
  // Run mode is permissive about event producers (a demo may leave an event for the
  // reader to feed); --check is the strict lint.
  builder.analyzer_options().strict_events = check_only;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    boom::Status status = builder.AddProgramText(buf.str(), path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  boom::AnalyzerReport report;
  boom::Result<boom::Program> built = builder.Build(&report);
  if (check_only) {
    if (!report.diagnostics.empty()) {
      std::fprintf(stderr, "%s", report.ToString().c_str());
    }
    std::fprintf(stderr, "%s: %zu error(s), %zu warning(s), %zu advisory(s)\n",
                 built.ok() ? built->name.c_str() : "olgrun",
                 report.num_errors(), report.num_warnings(), report.num_advisories());
    return report.num_errors() == 0 ? 0 : 1;
  }
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  for (const boom::Diagnostic& d : report.diagnostics) {
    std::fprintf(stderr, "%s\n", d.ToString().c_str());
  }

  boom::EngineOptions options;
  options.address = "olgrun";
  options.worker_threads = threads;
  options.enable_optimizer = optimize;
  boom::Engine engine(options);
  boom::Status status = engine.Install(*built);
  if (!status.ok()) {
    std::fprintf(stderr, "install failed: %s\n", status.ToString().c_str());
    return 1;
  }
  if (explain) {
    std::printf("%s", engine.ExplainPlan().c_str());
  }
  if (trace) {
    // Monitoring-as-metaprogramming: rewrite the loaded program into a companion that
    // records every insertion as trace_<table>(Time, cols...) rows, and install both.
    status = engine.Install(boom::MakeTracingProgram(engine.programs()[0]));
    if (!status.ok()) {
      std::fprintf(stderr, "tracing rewrite failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (profile) {
    status = boom::InstallProfiling(engine);
    if (!status.ok()) {
      std::fprintf(stderr, "profiling install failed: %s\n", status.ToString().c_str());
      return 1;
    }
  }

  // Drive the engine: initial tick, then timer deadlines up to --until.
  boom::Engine::TickResult result = engine.Tick(0);
  size_t total_derivations = result.derivations;
  double now = 0;
  while (true) {
    double next = engine.NextTimerDeadline();
    if (engine.HasQueuedInput()) {
      next = now;  // deferred @next tuples: run another timestep immediately
    }
    if (next > until_ms || next == std::numeric_limits<double>::infinity()) {
      break;
    }
    now = std::max(now, next);
    result = engine.Tick(now);
    total_derivations += result.derivations;
    for (const std::string& err : result.errors) {
      std::fprintf(stderr, "warning: %s\n", err.c_str());
    }
  }

  if (profile) {
    // Land the accumulated profile in perf_rule / perf_fixpoint (one extra timestep —
    // Publish enqueues, the tick applies) so --dump and monitor rules can see it.
    status = engine.PublishProfile();
    if (!status.ok()) {
      std::fprintf(stderr, "profile publish failed: %s\n", status.ToString().c_str());
      return 1;
    }
    engine.Tick(now);
  }

  // Final dump.
  std::vector<std::string> tables =
      dump_tables.empty() ? engine.catalog().TableNames() : dump_tables;
  for (const std::string& name : tables) {
    const boom::Table* table = engine.catalog().Find(name);
    if (table == nullptr) {
      std::fprintf(stderr, "no such table: %s\n", name.c_str());
      continue;
    }
    if (table->empty() && dump_tables.empty()) {
      continue;
    }
    std::printf("%s (%zu rows):\n", name.c_str(), table->size());
    std::vector<boom::Tuple> rows = table->Rows();
    std::sort(rows.begin(), rows.end());
    for (const boom::Tuple& row : rows) {
      std::printf("  %s\n", row.ToString().c_str());
    }
  }
  if (profile) {
    PrintRuleProfile(engine);
  }
  if (explain && optimize && engine.stats().replans > 0) {
    // Re-planning may have changed join orders since install; show the final plan too.
    std::printf("-- plan after %llu re-plan(s) --\n",
                static_cast<unsigned long long>(engine.stats().replans));
    std::printf("%s", engine.ExplainPlan().c_str());
  }
  std::printf("-- %zu derivations, virtual time %.0f ms --\n", total_derivations, now);
  return 0;
}
