// chaos_explorer: seeded fault-schedule search against the Overlog systems.
//
//   chaos_explorer --scenario=paxos --seeds=100
//   chaos_explorer --scenario=boomfs --bug=resurrect --seeds=20
//   chaos_explorer --scenario=paxos --bug=quorum1 --seeds=10 --verbose
//
// All time is virtual (discrete-event simulation), so output depends only on the flags:
// two identical invocations print byte-identical reports. Exit status is the number of
// failing seeds, capped at 1 — i.e. 0 iff every seed passed.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/chaos/explorer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: chaos_explorer [--scenario=paxos|boomfs|boommr] [--seeds=N]\n"
               "                      [--seed0=N] [--bug=NAME] [--no-shrink]\n"
               "                      [--horizon=MS] [--settle=MS] [--verbose] [--list]\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  boom::ExplorerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      for (const std::string& name : boom::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (ParseFlag(arg, "scenario", &value)) {
      options.scenario = value;
    } else if (ParseFlag(arg, "bug", &value)) {
      options.bug = value;
    } else if (ParseFlag(arg, "seeds", &value)) {
      options.seeds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed0", &value)) {
      options.seed0 = static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "horizon", &value)) {
      options.horizon_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "settle", &value)) {
      options.settle_ms = std::atof(value.c_str());
    } else {
      Usage();
      return 2;
    }
  }
  if (options.seeds <= 0 ||
      boom::MakeScenario(options.scenario, {.bug = options.bug}) == nullptr) {
    Usage();
    return 2;
  }

  boom::ExplorerReport report = boom::ExploreSeeds(options);
  std::fputs(report.text.c_str(), stdout);
  return report.failures > 0 ? 1 : 0;
}
