// chaos_explorer: seeded fault-schedule search against the Overlog systems.
//
//   chaos_explorer --scenario=paxos --seeds=100
//   chaos_explorer --scenario=boomfs --bug=resurrect --seeds=20
//   chaos_explorer --scenario=paxos --bug=quorum1 --seeds=10 --verbose
//
// All time is virtual (discrete-event simulation), so output depends only on the flags:
// two identical invocations print byte-identical reports. Exit status is the number of
// failing seeds, capped at 1 — i.e. 0 iff every seed passed.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/chaos/explorer.h"

namespace {

std::string Join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    out += out.empty() ? n : ", " + n;
  }
  return out;
}

void Usage() {
  std::fprintf(stderr,
               "usage: chaos_explorer [--scenario=paxos|boomfs|boommr] [--seeds=N]\n"
               "                      [--seed0=N] [--bug=NAME] [--no-shrink]\n"
               "                      [--no-timeline] [--horizon=MS] [--settle=MS]\n"
               "                      [--threads=N] [--verbose] [--list]\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  boom::ExplorerOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      for (const std::string& name : boom::ScenarioNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--no-timeline") {
      options.timeline = false;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (ParseFlag(arg, "scenario", &value)) {
      options.scenario = value;
    } else if (ParseFlag(arg, "bug", &value)) {
      options.bug = value;
    } else if (ParseFlag(arg, "seeds", &value)) {
      options.seeds = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed0", &value)) {
      options.seed0 = static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "horizon", &value)) {
      options.horizon_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "settle", &value)) {
      options.settle_ms = std::atof(value.c_str());
    } else if (ParseFlag(arg, "threads", &value)) {
      // Same-time engine ticks of distinct nodes run on N threads; the report stays
      // byte-identical to --threads=1 (determinism is enforced by the parallel tests).
      options.worker_threads = static_cast<size_t>(std::max(1, std::atoi(value.c_str())));
    } else {
      Usage();
      return 2;
    }
  }
  if (options.seeds <= 0) {
    Usage();
    return 2;
  }
  // Reject typos explicitly: a misspelled --scenario or --bug would otherwise sweep the
  // wrong (or the correct) implementation and report it green under the typo's banner.
  std::vector<std::string> scenarios = boom::ScenarioNames();
  if (std::find(scenarios.begin(), scenarios.end(), options.scenario) == scenarios.end()) {
    std::fprintf(stderr, "unknown scenario '%s' (valid: %s)\n", options.scenario.c_str(),
                 Join(scenarios).c_str());
    Usage();
    return 2;
  }
  if (boom::MakeScenario(options.scenario, {.bug = options.bug}) == nullptr) {
    std::vector<std::string> bugs = boom::ScenarioBugNames(options.scenario);
    std::fprintf(stderr, "unknown bug '%s' for scenario %s (valid: %s)\n",
                 options.bug.c_str(), options.scenario.c_str(),
                 bugs.empty() ? "none" : Join(bugs).c_str());
    Usage();
    return 2;
  }

  boom::ExplorerReport report = boom::ExploreSeeds(options);
  std::fputs(report.text.c_str(), stdout);
  return report.failures > 0 ? 1 : 0;
}
