// olglint: compile-time analysis for Overlog programs.
//
//   olglint file.olg [more.olg ...]     lint a composition of source files (strict)
//   olglint --family NAME|all           lint the generated built-in programs
//
// File mode composes the inputs through ProgramBuilder exactly like `olgrun`, runs the
// analyzer in strict mode, and prints every diagnostic. Family mode rebuilds the embedded
// programs (BOOM-FS NameNode, BOOM-MR JobTracker under both policies, Paxos, Chord, the HA
// bridge, and the monitor invariants) and installs each stack on a scratch engine, so the
// cross-program `extern` schemas are verified too; the engine's advisory analyzer reports
// are printed per program. Exit status is 1 if any error was found.

#include <cstdio>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "src/base/logging.h"
#include "src/boomfs/federation.h"
#include "src/boomfs/ha.h"
#include "src/boomfs/nn_program.h"
#include "src/boommr/jt_program.h"
#include "src/chord/chord_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/analyzer.h"
#include "src/overlog/engine.h"
#include "src/overlog/module.h"
#include "src/paxos/paxos_program.h"

namespace boom {
namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: olglint <file.olg> [more.olg ...]\n"
               "       olglint --family "
               "all|boomfs_nn|nn_extensions|nn_admission|jt_fifo|jt_late|jt_fairshare|"
               "jt_capacity|jt_admission|paxos|chord|ha|federation|monitor\n"
               "       olglint --dump nn_admission|jt_admission|nn_federation|"
               "partition_map|paxos_px<i>|paxos_nn<i>\n"
               "--dump prints the composed program text (the golden generator for the\n"
               "admission goldens in tests/golden/).\n");
}

struct LintTally {
  size_t errors = 0;
  size_t warnings = 0;
  size_t advisories = 0;
};

void PrintReport(const std::string& label, const AnalyzerReport& report,
                 LintTally* tally) {
  for (const Diagnostic& d : report.diagnostics) {
    std::fprintf(stderr, "%s\n", d.ToString().c_str());
  }
  tally->errors += report.num_errors();
  tally->warnings += report.num_warnings();
  tally->advisories += report.num_advisories();
  std::printf("%-12s %zu error(s), %zu warning(s), %zu advisory(s)\n", label.c_str(),
              report.num_errors(), report.num_warnings(), report.num_advisories());
}

// Installs a family's program stack on a scratch engine (verifying extern schemas against
// the programs they borrow from) and reports the per-program analyzer findings.
int LintStack(const std::string& label, const std::vector<Program>& stack,
              LintTally* tally) {
  EngineOptions options;
  options.address = "olglint";
  Engine engine(options);
  for (const Program& program : stack) {
    Status status = engine.Install(program);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: install of '%s' failed: %s\n", label.c_str(),
                   program.name.c_str(), status.ToString().c_str());
      ++tally->errors;
      return 1;
    }
  }
  AnalyzerReport merged;
  for (const AnalyzerReport& report : engine.analyzer_reports()) {
    merged.diagnostics.insert(merged.diagnostics.end(), report.diagnostics.begin(),
                              report.diagnostics.end());
  }
  PrintReport(label, merged, tally);
  return 0;
}

std::vector<Program> MonitorStack() {
  // The invariants join NameNode tables, so they lint against the NameNode program plus
  // the violation table InstallInvariants would declare.
  Program violation_decl;
  violation_decl.name = "invariant_decl";
  TableDef def;
  def.name = "invariant_violation";
  def.columns = {"Name", "Detail"};
  violation_decl.tables.push_back(def);
  return {BoomFsNnProgram(), violation_decl,
          BoomFsInvariantProgram(3, /*include_under_replication=*/true),
          RuleHogInvariantProgram(5000)};
}

int LintFamily(const std::string& family, LintTally* tally) {
  bool all = family == "all";
  bool matched = false;
  auto want = [&](const char* name) {
    bool yes = all || family == name;
    matched = matched || yes;
    return yes;
  };
  int rc = 0;
  if (want("boomfs_nn")) {
    rc |= LintStack("boomfs_nn", {BoomFsNnProgram()}, tally);
  }
  if (want("jt_fifo")) {
    JtProgramOptions options;
    options.policy = MrPolicy::kFifo;
    rc |= LintStack("jt_fifo", {BoomMrJtProgram(options)}, tally);
  }
  if (want("jt_late")) {
    JtProgramOptions options;
    options.policy = MrPolicy::kLate;
    rc |= LintStack("jt_late", {BoomMrJtProgram(options)}, tally);
  }
  if (want("jt_fairshare")) {
    JtProgramOptions options;
    options.policy = MrPolicy::kFairShare;
    rc |= LintStack("jt_fairshare", {BoomMrJtProgram(options)}, tally);
  }
  if (want("jt_capacity")) {
    JtProgramOptions options;
    options.policy = MrPolicy::kCapacity;
    options.tenant_capacities = {{"jt_client", 4}, {"jt_client_t1", 2}};
    rc |= LintStack("jt_capacity", {BoomMrJtProgram(options)}, tally);
  }
  if (want("paxos")) {
    PaxosProgramOptions options;
    options.peers = {"px0", "px1", "px2"};
    options.my_index = 0;
    rc |= LintStack("paxos", {PaxosProgram(options)}, tally);
  }
  if (want("chord")) {
    ChordOptions options;
    options.bootstrap = "c0";
    rc |= LintStack("chord", {ChordProgram("c0", options)}, tally);
  }
  if (want("ha")) {
    PaxosProgramOptions options;
    options.peers = {"nn0", "nn1", "nn2"};
    options.my_index = 0;
    rc |= LintStack(
        "ha", {PaxosProgram(options), BoomFsNnProgram(), HaBridgeProgram()}, tally);
  }
  if (want("nn_extensions")) {
    NnProgramOptions options;
    options.with_rename = true;
    options.with_gc = true;
    rc |= LintStack("nn_extensions", {BoomFsNnProgram(options)}, tally);
  }
  if (want("nn_admission")) {
    rc |= LintStack("nn_admission", {BoomFsGatewayProgram()}, tally);
  }
  if (want("jt_admission")) {
    JtProgramOptions options;
    options.policy = MrPolicy::kFifo;
    options.with_admission = true;
    rc |= LintStack("jt_admission", {BoomMrJtProgram(options)}, tally);
  }
  if (want("federation")) {
    // The full per-replica stack of a federated group member (extern schemas verified
    // program-against-program), plus the standalone partition-map service.
    PaxosProgramOptions options;
    options.peers = {"fed_g0r0", "fed_g0r1", "fed_g0r2"};
    options.my_index = 0;
    NnProgramOptions nn;
    nn.with_rename = true;
    HaBridgeOptions bridge;  // the fenced variant the federated deployment installs
    bridge.fed_fence = true;
    bridge.num_partitions = 8;
    rc |= LintStack("federation",
                    {PaxosProgram(options), BoomFsNnProgram(nn),
                     HaBridgeProgram(bridge), NnFederationProgram()},
                    tally);
    rc |= LintStack("partition_map", {PartitionMapProgram()}, tally);
  }
  if (want("monitor")) {
    rc |= LintStack("monitor", MonitorStack(), tally);
  }
  if (!matched) {
    std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
    Usage();
    return 2;
  }
  return rc;
}

int LintFiles(const std::vector<std::string>& paths, LintTally* tally) {
  ProgramBuilder builder("");
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    Status status = builder.AddProgramText(buf.str(), path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      ++tally->errors;
      return 1;
    }
  }
  AnalyzerReport report;
  Result<Program> built = builder.Build(&report);
  PrintReport(built.ok() ? built->name : paths.front(), report, tally);
  return report.num_errors() == 0 ? 0 : 1;
}

// The generated programs whose text is frozen as a golden (tests/golden/*.olg); --dump
// prints one so the goldens are regenerable with a one-liner.
int DumpProgram(const std::string& name) {
  Program program;
  if (name == "nn_admission") {
    program = BoomFsGatewayProgram();
  } else if (name == "jt_admission") {
    JtProgramOptions options;
    options.policy = MrPolicy::kFifo;
    options.with_admission = true;
    program = BoomMrJtProgram(options);
  } else if (name == "nn_federation") {
    program = NnFederationProgram();
  } else if (name == "partition_map") {
    program = PartitionMapProgram();
  } else if ((name.rfind("paxos_px", 0) == 0 || name.rfind("paxos_nn", 0) == 0) &&
             name.size() == 9 && name[8] >= '0' && name[8] <= '2') {
    // The three-replica configurations frozen for program_equivalence_test.
    PaxosProgramOptions options;
    std::string prefix = name.substr(6, 2);
    options.peers = {prefix + "0", prefix + "1", prefix + "2"};
    options.my_index = name[8] - '0';
    program = PaxosProgram(options);
  } else {
    std::fprintf(stderr, "unknown dump target '%s'\n", name.c_str());
    Usage();
    return 2;
  }
  std::printf("%s", program.ToString().c_str());
  return 0;
}

int Run(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string family;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--dump" && i + 1 < argc) {
      return DumpProgram(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (family.empty() && paths.empty()) {
    Usage();
    return 2;
  }
  LintTally tally;
  int rc = 0;
  if (!family.empty()) {
    rc = LintFamily(family, &tally);
  }
  if (rc == 0 && !paths.empty()) {
    rc = LintFiles(paths, &tally);
  }
  std::printf("olglint: %zu error(s), %zu warning(s), %zu advisory(s)\n", tally.errors,
              tally.warnings, tally.advisories);
  return rc;
}

}  // namespace
}  // namespace boom

int main(int argc, char** argv) { return boom::Run(argc, argv); }
