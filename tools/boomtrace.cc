// boomtrace: run a seeded simulation with causal tracing attached, then dump / filter /
// summarize the resulting traces.
//
//   boomtrace --mode=fs --seed=7 --ops=3 --tree
//   boomtrace --mode=fs --critical --top-rules=5
//   boomtrace --mode=chaos --scenario=boomfs --seed=42
//
// All time is virtual (discrete-event simulation) and span ids derive from the seed, so
// output depends only on the flags: two identical invocations print byte-identical text.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/boomfs/boomfs.h"
#include "src/chaos/fault_schedule.h"
#include "src/chaos/runner.h"
#include "src/chaos/scenario.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/span.h"
#include "src/telemetry/trace_query.h"

namespace {

struct Options {
  std::string mode = "fs";  // fs | chaos
  uint64_t seed = 1;
  int ops = 3;                      // fs: files written then read back
  std::string scenario = "boomfs";  // chaos mode
  std::string bug;                  // chaos mode
  std::string filter;               // keep traces whose root span name contains this
  bool summarize = false;
  bool tree = false;
  bool critical = false;
  bool json = false;
  bool metrics = false;
  int top_rules = 0;  // fs: per-rule NameNode profile, top K by wall time
};

void Usage() {
  std::fprintf(stderr,
               "usage: boomtrace [--mode=fs|chaos] [--seed=N]\n"
               "                 [--ops=N]                        (fs: files to write+read)\n"
               "                 [--scenario=NAME] [--bug=NAME]   (chaos)\n"
               "                 [--summarize] [--tree] [--critical] [--json]\n"
               "                 [--filter=SUBSTR] [--top-rules=K] [--metrics]\n"
               "default output is --summarize; --json dumps every span unfiltered;\n"
               "--top-rules needs --mode=fs (the tool owns the NameNode engine there)\n");
}

bool ParseFlag(const std::string& arg, const std::string& name, std::string* out) {
  std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *out = arg.substr(prefix.size());
  return true;
}

// Traces surviving --filter (all of them when the filter is empty), summary order.
std::vector<boom::TraceSummary> FilteredSummaries(
    const std::vector<boom::SpanRecord>& spans, const std::string& filter) {
  std::vector<boom::TraceSummary> all = boom::SummarizeTraces(spans);
  if (filter.empty()) {
    return all;
  }
  std::vector<boom::TraceSummary> kept;
  for (boom::TraceSummary& s : all) {
    if (s.root_name.find(filter) != std::string::npos) {
      kept.push_back(std::move(s));
    }
  }
  return kept;
}

void PrintSummaries(const std::vector<boom::TraceSummary>& summaries) {
  std::printf("%-16s  %-20s  %-12s  %10s  %10s  %6s\n", "TRACE", "ROOT", "NODE", "START",
              "END", "SPANS");
  for (const boom::TraceSummary& s : summaries) {
    std::printf("%016llx  %-20s  %-12s  %10.3f  %10.3f  %6zu\n",
                static_cast<unsigned long long>(s.trace_id), s.root_name.c_str(),
                s.root_node.c_str(), s.start_ms, s.end_ms, s.span_count);
  }
}

void PrintCriticalPath(const std::vector<boom::SpanRecord>& spans,
                       const boom::TraceSummary& summary) {
  std::printf("critical path of %016llx %s@%s (%.3f ms):\n",
              static_cast<unsigned long long>(summary.trace_id), summary.root_name.c_str(),
              summary.root_node.c_str(), summary.end_ms - summary.start_ms);
  for (const boom::SpanRecord* span : boom::CriticalPath(spans, summary.trace_id)) {
    std::printf("  [%10.3f .. %10.3f] %s@%s\n", span->start_ms, span->end_ms,
                span->name.c_str(), span->node.c_str());
  }
}

void PrintTopRules(const boom::Engine& engine, int k) {
  std::vector<const boom::Engine::RuleProfile*> rules;
  for (const auto& [key, profile] : engine.rule_profiles()) {
    rules.push_back(&profile);
  }
  std::sort(rules.begin(), rules.end(),
            [](const boom::Engine::RuleProfile* a, const boom::Engine::RuleProfile* b) {
              if (a->wall_us != b->wall_us) {
                return a->wall_us > b->wall_us;
              }
              return std::tie(a->program, a->rule) < std::tie(b->program, b->rule);
            });
  if (rules.size() > static_cast<size_t>(k)) {
    rules.resize(static_cast<size_t>(k));
  }
  std::printf("top %zu rules by wall time (NameNode):\n", rules.size());
  std::printf("  %-40s  %8s  %8s  %9s  %10s\n", "RULE", "EVALS", "TUPLES", "MAX/TICK",
              "WALL_US");
  for (const boom::Engine::RuleProfile* r : rules) {
    std::string name = r->program + ":" + r->rule;
    std::printf("  %-40s  %8llu  %8llu  %9llu  %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(r->evals),
                static_cast<unsigned long long>(r->tuples),
                static_cast<unsigned long long>(r->max_tuples_per_tick), r->wall_us);
  }
}

void RenderOutputs(const Options& opt, const boom::Tracer& tracer) {
  const std::vector<boom::SpanRecord>& spans = tracer.spans();
  std::vector<boom::TraceSummary> summaries = FilteredSummaries(spans, opt.filter);
  if (opt.summarize) {
    PrintSummaries(summaries);
  }
  if (opt.tree) {
    for (const boom::TraceSummary& s : summaries) {
      std::fputs(boom::RenderTraceTree(spans, s.trace_id).c_str(), stdout);
    }
  }
  if (opt.critical) {
    for (const boom::TraceSummary& s : summaries) {
      PrintCriticalPath(spans, s);
    }
  }
  if (opt.json) {
    std::fputs(tracer.ToJson().c_str(), stdout);
    std::fputs("\n", stdout);
  }
  if (tracer.dropped() > 0) {
    std::printf("(%zu spans dropped past the tracer cap)\n", tracer.dropped());
  }
  if (opt.metrics) {
    std::fputs(boom::MetricsRegistry::Global().ToText().c_str(), stdout);
  }
}

int RunFs(const Options& opt) {
  boom::Cluster cluster(opt.seed);
  boom::Tracer tracer(opt.seed);
  cluster.set_tracer(&tracer);

  boom::FsSetupOptions fs_opts;
  boom::FsHandles handles = boom::SetupFs(cluster, fs_opts);
  boom::Engine* nn_engine = cluster.engine(handles.namenode);
  if (opt.top_rules > 0 && nn_engine != nullptr) {
    nn_engine->EnableProfiling(true);
  }
  cluster.RunUntil(2000);  // heartbeats registered, safe mode exited

  boom::SyncFs fs(cluster, handles.client);
  std::string payload(100 * 1024, 'x');  // two chunks -> a real pipeline per write
  int ok_ops = 0;
  for (int i = 0; i < opt.ops; ++i) {
    std::string path = "/f" + std::to_string(i);
    if (fs.WriteFile(path, payload)) {
      ++ok_ops;
    }
  }
  std::string data;
  for (int i = 0; i < opt.ops; ++i) {
    std::string path = "/f" + std::to_string(i);
    if (fs.ReadFile(path, &data) && data == payload) {
      ++ok_ops;
    }
  }
  cluster.RunUntil(cluster.now() + 1000);  // drain heartbeats and pipeline acks

  std::printf("fs run: seed=%llu ops=%d ok=%d/%d end=%.3f spans=%zu\n",
              static_cast<unsigned long long>(opt.seed), opt.ops, ok_ops, 2 * opt.ops,
              cluster.now(), tracer.spans().size());
  RenderOutputs(opt, tracer);
  if (opt.top_rules > 0 && nn_engine != nullptr) {
    PrintTopRules(*nn_engine, opt.top_rules);
  }
  return ok_ops == 2 * opt.ops ? 0 : 1;
}

int RunChaos(const Options& opt) {
  auto scenario = boom::MakeScenario(opt.scenario, {.bug = opt.bug});
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' or bug '%s'\n", opt.scenario.c_str(),
                 opt.bug.c_str());
    return 2;
  }
  boom::FaultSchedule schedule =
      boom::GenerateFaultSchedule(opt.seed, scenario->FaultProfile());
  boom::Tracer tracer(opt.seed);
  boom::ChaosRunOptions run_opts;
  run_opts.tracer = &tracer;
  boom::ChaosRunResult result = boom::RunChaosOnce(*scenario, opt.seed, schedule, run_opts);

  std::printf("chaos run: scenario=%s seed=%llu %s end=%.3f spans=%zu\n",
              opt.scenario.c_str(), static_cast<unsigned long long>(opt.seed),
              result.passed ? "PASS" : "FAIL", result.end_ms, tracer.spans().size());
  std::fputs(schedule.ToString().c_str(), stdout);
  for (const std::string& v : result.violations) {
    std::printf("violation: %s\n", v.c_str());
  }
  RenderOutputs(opt, tracer);
  return result.passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--summarize") {
      opt.summarize = true;
    } else if (arg == "--tree") {
      opt.tree = true;
    } else if (arg == "--critical") {
      opt.critical = true;
    } else if (arg == "--json") {
      opt.json = true;
    } else if (arg == "--metrics") {
      opt.metrics = true;
    } else if (ParseFlag(arg, "mode", &value)) {
      opt.mode = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      opt.seed = static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else if (ParseFlag(arg, "ops", &value)) {
      opt.ops = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "scenario", &value)) {
      opt.scenario = value;
    } else if (ParseFlag(arg, "bug", &value)) {
      opt.bug = value;
    } else if (ParseFlag(arg, "filter", &value)) {
      opt.filter = value;
    } else if (ParseFlag(arg, "top-rules", &value)) {
      opt.top_rules = std::atoi(value.c_str());
    } else {
      Usage();
      return 2;
    }
  }
  if (!opt.summarize && !opt.tree && !opt.critical && !opt.json) {
    opt.summarize = true;
  }
  if (opt.mode == "fs") {
    return RunFs(opt);
  }
  if (opt.mode == "chaos") {
    if (opt.top_rules > 0) {
      std::fprintf(stderr, "--top-rules is only available with --mode=fs\n");
      return 2;
    }
    return RunChaos(opt);
  }
  Usage();
  return 2;
}
