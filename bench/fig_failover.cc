// F4 — NameNode failover: client-visible progress while the primary NameNode dies mid-run.
//
// The paper's availability experiment: with NameNode state Paxos-replicated across three
// nodes, killing the primary produces a bounded pause (election + phase 1) and no lost
// operations. We run a closed-loop metadata workload, kill the primary at t=60s, and print
// the per-5s completed-op timeline and the latency spikes around the failover — against a
// failure-free control run.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "src/boomfs/ha.h"

namespace boom {
namespace {

struct Timeline {
  std::map<int, int> ops_per_bucket;  // 5s bucket -> completed ops
  std::vector<double> latencies;
  double max_gap_ms = 0;  // longest interval between consecutive completions
  int total_ops = 0;
};

Timeline Run(bool kill_primary) {
  Cluster cluster(808);
  HaFsOptions opts;
  opts.num_replicas = 3;
  opts.num_datanodes = 4;
  HaFsHandles handles = SetupHaFs(cluster, opts);
  cluster.RunUntil(3000);

  Timeline timeline;
  double last_done = cluster.now();
  int seq = 0;
  bool in_flight = false;

  // Closed loop: issue the next mkdir as soon as the previous one completes.
  std::function<void()> issue = [&] {
    if (cluster.now() > 120000) {
      return;
    }
    in_flight = true;
    double issued_at = cluster.now();
    handles.client->Mkdir(cluster, "/op" + std::to_string(seq++),
                          [&, issued_at](bool ok, const Value&) {
                            in_flight = false;
                            double now = cluster.now();
                            if (ok) {
                              ++timeline.total_ops;
                              ++timeline.ops_per_bucket[static_cast<int>(now / 5000)];
                              timeline.latencies.push_back(now - issued_at);
                              timeline.max_gap_ms =
                                  std::max(timeline.max_gap_ms, now - last_done);
                              last_done = now;
                            }
                            issue();
                          });
  };
  issue();

  if (kill_primary) {
    cluster.ScheduleAt(60000, [&] { cluster.KillNode(handles.replicas[0]); });
  }
  cluster.RunUntil(125000);
  return timeline;
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F4", "HA NameNode failover: closed-loop metadata ops, primary killed at t=60s");

  Timeline control = Run(/*kill_primary=*/false);
  Timeline failover = Run(/*kill_primary=*/true);

  std::printf("timeline (completed mkdir ops per 5s bucket):\n");
  std::printf("  %-10s %12s %12s\n", "t (s)", "no-failure", "failover");
  for (int bucket = 0; bucket <= 24; ++bucket) {
    int c = control.ops_per_bucket.count(bucket) ? control.ops_per_bucket.at(bucket) : 0;
    int f = failover.ops_per_bucket.count(bucket) ? failover.ops_per_bucket.at(bucket) : 0;
    std::printf("  %3d-%-3d    %12d %12d%s\n", bucket * 5, bucket * 5 + 5, c, f,
                bucket == 12 ? "   <-- primary killed" : "");
  }
  std::printf("\nper-op latency:\n");
  PrintSummaryRow("no-failure", control.latencies);
  PrintSummaryRow("failover", failover.latencies);
  std::printf("\ntotals: no-failure=%d ops, failover=%d ops\n", control.total_ops,
              failover.total_ops);
  std::printf("longest completion gap: no-failure=%.0f ms, failover=%.0f ms\n",
              control.max_gap_ms, failover.max_gap_ms);
  std::printf(
      "\nShape check vs paper: the failover run shows a single bounded pause (election +\n"
      "phase-1 takeover, on the order of the lease timeout) and then full-rate progress; no\n"
      "operations are lost, matching the paper's hot-standby result.\n");
  return 0;
}
