// T3 — Cost of NameNode replication: metadata-op latency and message overhead with a single
// unreplicated NameNode vs a 3-replica Paxos group (the paper's availability-overhead
// numbers).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/boomfs/boomfs.h"
#include "src/boomfs/ha.h"

namespace boom {
namespace {

struct RunStats {
  std::vector<double> latencies;
  double msgs_per_op = 0;
  int failed = 0;
};

constexpr int kOps = 150;

RunStats RunSingle() {
  Cluster cluster(4040);
  FsSetupOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_datanodes = 3;
  FsHandles handles = SetupFs(cluster, opts);
  cluster.RunUntil(1500);

  RunStats stats;
  uint64_t msgs_before = cluster.net_stats().messages;
  SyncFs fs(cluster, handles.client);
  for (int i = 0; i < kOps; ++i) {
    double start = cluster.now();
    if (fs.Mkdir("/lat" + std::to_string(i))) {
      stats.latencies.push_back(cluster.now() - start);
    } else {
      ++stats.failed;
    }
  }
  stats.msgs_per_op =
      static_cast<double>(cluster.net_stats().messages - msgs_before) / kOps;
  return stats;
}

RunStats RunReplicated(int replicas) {
  Cluster cluster(4040);
  HaFsOptions opts;
  opts.num_replicas = replicas;
  opts.num_datanodes = 3;
  HaFsHandles handles = SetupHaFs(cluster, opts);
  cluster.RunUntil(3000);

  RunStats stats;
  uint64_t msgs_before = cluster.net_stats().messages;
  SyncFs fs(cluster, handles.client, /*timeout_ms=*/60000);
  for (int i = 0; i < kOps; ++i) {
    double start = cluster.now();
    if (fs.Mkdir("/lat" + std::to_string(i))) {
      stats.latencies.push_back(cluster.now() - start);
    } else {
      ++stats.failed;
    }
  }
  stats.msgs_per_op =
      static_cast<double>(cluster.net_stats().messages - msgs_before) / kOps;
  return stats;
}

void Row(const char* label, const RunStats& stats) {
  Summary s = Summarize(stats.latencies);
  std::printf("  %-24s ok=%-4zu fail=%-3d p50=%-7.1f p90=%-7.1f p99=%-7.1f msgs/op=%.1f\n",
              label, s.n, stats.failed, s.p50, s.p90, s.p99, stats.msgs_per_op);
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("T3", "replication overhead: unreplicated vs Paxos-replicated NameNode");
  std::printf("%d sequential mkdir ops, virtual-time latency in ms:\n\n", kOps);

  RunStats single = RunSingle();
  RunStats triple = RunReplicated(3);
  RunStats quint = RunReplicated(5);

  std::printf("  %-24s %-8s %-8s %-8s %-8s %-8s\n", "configuration", "", "", "", "", "");
  Row("1 NameNode (no Paxos)", single);
  Row("3 replicas (Paxos)", triple);
  Row("5 replicas (Paxos)", quint);

  double overhead =
      Percentile(triple.latencies, 50) / std::max(1e-9, Percentile(single.latencies, 50));
  std::printf("\nmedian-latency multiple of 3-replica Paxos vs single NameNode: %.1fx\n",
              overhead);
  std::printf(
      "\nShape check vs paper: replication costs a constant factor per metadata op (the\n"
      "Paxos round trips plus the proposer's batching tick) and message count grows with\n"
      "the replica count; throughput-insensitive workloads tolerate it, which is the\n"
      "paper's argument for hot-standby availability at modest cost.\n");
  return 0;
}
