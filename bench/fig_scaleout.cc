// F8 — federated metadata plane scale-out: aggregate namespace throughput vs number of
// Paxos-replicated NameNode *groups* (src/boomfs/federation.h), plus a fault-isolation
// run showing a leader kill degrades only the faulted group's tenants.
//
// Each replica is modeled as a busy server (fixed per-fed_request service time, measured
// from the real Overlog engine). The SAME seeded open-loop trace (identical arrivals,
// identical op sequence) is offered above aggregate capacity to 1, 2, and 4 groups:
// hash-partitioning the namespace across groups divides the intake, so served throughput
// should scale near-linearly with group count.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/boomfs/federation.h"
#include "src/boomfs/partition.h"
#include "src/boomfs/protocol.h"
#include "src/workload/fs_load.h"

namespace boom {
namespace {

constexpr int kPartitions = 8;
constexpr int kTenants = 8;

// Real cost of one namespace op on the Overlog engine (wall-clock pilot; reused as the
// simulated service time so saturation is meaningful).
double MeasureOpCostMs() {
  Cluster cluster(1234);
  PartitionedFsOptions opts;
  opts.num_partitions = 1;
  PartitionedFsHandles handles = SetupPartitionedFs(cluster, opts);
  SyncFs fs(cluster, handles.clients[0]);
  cluster.RunUntil(1200);
  constexpr int kOps = 300;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    fs.CreateFile("/f" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / kOps;
}

std::vector<std::string> TenantDirs() {
  std::vector<std::string> dirs;
  for (int t = 0; t < kTenants; ++t) {
    dirs.push_back("/d" + std::to_string(t));
  }
  return dirs;
}

FsLoadOptions TraceOptions(double horizon_ms, double mean_interarrival_ms) {
  FsLoadOptions load;
  load.seed = 42;  // the SAME trace for every group count
  load.horizon_ms = horizon_ms;
  load.mean_interarrival_ms = mean_interarrival_ms;
  load.num_tenants = kTenants;
  load.tenant_weights.assign(kTenants, 1.0 / kTenants);
  load.tenant_dirs = TenantDirs();
  // Near-uniform client population: with the default Zipf(1.1) skew a handful of hot
  // clients dominate, and since each client hashes to one tenant the per-tenant rates
  // would be wildly uneven — this figure compares per-tenant goodput, so every tenant
  // needs a steady arrival stream.
  load.zipf_s = 0.01;
  return load;
}

// --- scaling: served throughput vs group count, identical open-loop trace ---

struct ScaleResult {
  int groups;
  double throughput_ops_per_s;
};

ScaleResult RunScale(int groups, double service_ms) {
  Cluster cluster(24680);
  FederatedFsOptions opts;
  opts.num_groups = groups;
  opts.replicas_per_group = 1;  // scaling axis is groups, not replication
  opts.num_partitions = kPartitions;
  opts.num_datanodes = 4;
  opts.replication_factor = 3;
  opts.num_clients = kTenants;
  // The trace is offered ABOVE aggregate capacity, so queues grow and responses lag;
  // disable client-side deadlines so every served op is counted when its answer arrives.
  opts.client_timeout_ms = 600000;
  opts.client_retries = 1;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  for (const std::string& replica : handles.AllReplicas()) {
    cluster.SetServiceTime(replica, [service_ms](const Message& m) {
      return m.table == kFedRequest ? service_ms : 0.0;
    });
  }
  cluster.RunUntil(1500);

  // Offered load: 4.5x ONE group's intake capacity, so even four groups stay saturated
  // and served throughput measures server capacity, not the trace. A group's capacity is
  // the slower of its two pipeline stages: the engine serving fed_requests and the Paxos
  // proposer draining one command per tick.
  const double group_capacity =
      std::min(1000.0 / service_ms, 1000.0 / kFedProposerTickMs);
  const double horizon_ms = 10000;
  FsLoadOptions load = TraceOptions(horizon_ms, 1000.0 / (4.5 * group_capacity));
  load.op_timeout_ms = 600000;
  load.max_op_retries = 1;
  FsLoadWorkload workload(cluster, load,
                          std::vector<FsClient*>(handles.clients.begin(),
                                                 handles.clients.end()));
  cluster.RunUntil(1500 + horizon_ms + 2000);

  ScaleResult r;
  r.groups = groups;
  r.throughput_ops_per_s = workload.GoodputBetween(1500 + 2000, 1500 + horizon_ms);
  return r;
}

// --- isolation: kill one group's leader mid-run, watch per-tenant goodput ---

// One isolation run: the federated deployment under the F8 trace, optionally killing
// group-0's leader at `kill_at`. Returns per-tenant goodput over [win0, win1).
struct IsolationRun {
  std::vector<double> tenant_goodput;
  std::vector<int> tenant_group;
};

IsolationRun RunIsolationOnce(double service_ms, bool kill, double kill_at, double win0,
                              double win1) {
  Cluster cluster(13579);
  FederatedFsOptions opts;
  opts.num_groups = 2;
  opts.replicas_per_group = 3;
  opts.num_partitions = kPartitions;
  opts.num_datanodes = 4;
  opts.num_clients = kTenants;
  FederatedFsHandles handles = SetupFederatedFs(cluster, opts);
  for (const std::string& replica : handles.AllReplicas()) {
    cluster.SetServiceTime(replica, [service_ms](const Message& m) {
      return m.table == kFedRequest ? service_ms : 0.0;
    });
  }
  cluster.RunUntil(1500);

  // Moderate load (~40% of aggregate capacity): failures here come from the fault, not
  // from saturation.
  const double aggregate_capacity =
      2 * std::min(1000.0 / service_ms, 1000.0 / kFedProposerTickMs);
  const double horizon_ms = 16000;
  FsLoadOptions load = TraceOptions(horizon_ms, 1000.0 / (0.4 * aggregate_capacity));
  FsLoadWorkload workload(cluster, load,
                          std::vector<FsClient*>(handles.clients.begin(),
                                                 handles.clients.end()));

  cluster.RunUntil(kill_at);
  if (kill) {
    std::string leader = GroupLeader(cluster, handles.groups[0]);
    std::printf("  killing group-0 leader %s at t=%.0fms\n", leader.c_str(), kill_at);
    cluster.KillNode(leader);
  }
  cluster.RunUntil(1500 + horizon_ms + 2000);

  IsolationRun run;
  for (int t = 0; t < kTenants; ++t) {
    int64_t pid = RoutingPid("/d" + std::to_string(t), kPartitions);
    run.tenant_group.push_back(handles.pid_group[static_cast<size_t>(pid)]);
    run.tenant_goodput.push_back(workload.TenantGoodputBetween(t, win0, win1));
  }
  return run;
}

void RunIsolation(double service_ms) {
  // The fault's effect is isolated by a paired experiment: the same seeded trace on two
  // identical deployments, one with the kill and one without, compared over the same
  // fault window. (Comparing pre- vs post-fault windows within one run would confound
  // the fault with Poisson noise between windows.)
  // Window: the 1.5s right after the kill — the faulted group's leader-election gap.
  // (Longer windows hide the outage: once the new leader is up, the proposer drains the
  // queued backlog far faster than the offered rate, so completion counts catch up.)
  const double t0 = 1500;
  const double kill_at = t0 + 8000;
  const double win0 = kill_at, win1 = kill_at + 1500;
  IsolationRun base = RunIsolationOnce(service_ms, false, kill_at, win0, win1);
  IsolationRun faulted = RunIsolationOnce(service_ms, true, kill_at, win0, win1);

  std::printf("  per-tenant goodput over the 1.5s after the kill, vs the identical "
              "no-fault run:\n");
  std::printf("  %-8s %-6s %14s %14s %10s\n", "tenant", "group", "no-fault(op/s)",
              "faulted(op/s)", "ratio");
  bool isolated = true;
  bool faulted_group_hit = false;
  for (int t = 0; t < kTenants; ++t) {
    int group = base.tenant_group[static_cast<size_t>(t)];
    double b = base.tenant_goodput[static_cast<size_t>(t)];
    double f = faulted.tenant_goodput[static_cast<size_t>(t)];
    double ratio = b > 0 ? f / b : 0;
    std::printf("  t%-7d %-6d %14.1f %14.1f %9.2fx\n", t, group, b, f, ratio);
    if (group != 0 && b > 0 && ratio < 0.9) {
      isolated = false;
    }
    if (group == 0 && b > 0 && ratio < 0.9) {
      faulted_group_hit = true;
    }
  }
  std::printf("  faulted group's tenants visibly degraded: %s\n",
              faulted_group_hit ? "yes" : "no");
  std::printf("  non-faulted group's tenants kept >= 0.9x no-fault goodput: %s\n",
              isolated ? "yes" : "NO");
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F8", "federated metadata plane: throughput vs NameNode groups");

  // Floor the modeled service time at 4ms: the scale-out claim is about ratios, and
  // smaller per-op costs mean proportionally higher arrival rates, whose multi-second
  // overload backlog makes the simulation itself quadratically slow.
  double service_ms = std::max(4.0, MeasureOpCostMs());
  std::printf("per-op service time (measured from the real engine): %.2f ms\n\n",
              service_ms);

  std::printf("scale-out (identical seeded open-loop trace, offered 4.5x one group's "
              "capacity):\n");
  std::printf("  %-8s %16s %10s\n", "groups", "throughput(op/s)", "speedup");
  double base = 0;
  for (int groups : {1, 2, 4}) {
    ScaleResult r = RunScale(groups, service_ms);
    if (groups == 1) {
      base = r.throughput_ops_per_s;
    }
    std::printf("  %-8d %16.1f %9.2fx\n", r.groups, r.throughput_ops_per_s,
                r.throughput_ops_per_s / std::max(1e-9, base));
  }

  std::printf("\nfault isolation (2 groups x 3 replicas, group-0 leader killed "
              "mid-run):\n");
  RunIsolation(service_ms);

  std::printf(
      "\nShape check vs paper: partitioning the namespace across Paxos-replicated\n"
      "NameNode groups scales metadata throughput near-linearly (the paper reports the\n"
      "same trend for its partitioned NameNode on EC2), and a leader failure inside one\n"
      "group degrades only that group's tenants — the partition map keeps every other\n"
      "group serving at full rate.\n");
  return 0;
}
