// F5 — NameNode scale-out: namespace-op throughput vs number of hash partitions (the
// paper's scalability experiment, rev F3).
//
// The NameNode is modeled as a busy server (fixed per-op service time, measured from the
// real Overlog engine); 12 closed-loop clients saturate it. Partitioning the namespace
// across N NameNodes divides the offered load, so throughput should scale near-linearly
// until clients, not servers, are the bottleneck.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/boomfs/partition.h"
#include "src/workload/workload.h"

namespace boom {
namespace {

// Real cost of one namespace op on the Overlog engine (wall-clock pilot; reused as the
// simulated service time so saturation is meaningful).
double MeasureOpCostMs() {
  Cluster cluster(1234);
  PartitionedFsOptions opts;
  opts.num_partitions = 1;
  PartitionedFsHandles handles = SetupPartitionedFs(cluster, opts);
  SyncFs fs(cluster, handles.clients[0]);
  cluster.RunUntil(1200);
  constexpr int kOps = 300;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    fs.CreateFile("/f" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / kOps;
}

struct ScaleResult {
  int partitions;
  double throughput_ops_per_s;
  double p50_latency_ms;
};

ScaleResult Run(int partitions, double service_ms) {
  Cluster cluster(24680);
  PartitionedFsOptions opts;
  opts.kind = FsKind::kBoomFs;
  opts.num_partitions = partitions;
  opts.num_datanodes = 4;
  opts.num_clients = 24;
  PartitionedFsHandles handles = SetupPartitionedFs(cluster, opts);
  for (const std::string& nn : handles.partitions) {
    cluster.SetServiceTime(nn, [service_ms](const Message&) { return service_ms; });
  }
  cluster.RunUntil(1500);

  // Pre-create the directory skeleton on every partition.
  bool dirs_done = false;
  int pending_dirs = 8;
  for (int d = 0; d < 8; ++d) {
    handles.clients[0]->MkdirAll(cluster, "/d" + std::to_string(d), handles.partitions,
                                 [&pending_dirs, &dirs_done](bool, const Value&) {
                                   if (--pending_dirs == 0) {
                                     dirs_done = true;
                                   }
                                 });
  }
  while (!dirs_done && cluster.now() < 30000) {
    cluster.RunUntil(cluster.now() + 1.0);
  }

  // Closed-loop create workload from every client.
  const double t_start = cluster.now();
  const double t_end = t_start + 20000;  // 20s of virtual time
  int completed = 0;
  std::vector<double> latencies;
  int seq = 0;
  for (FsClient* client : handles.clients) {
    auto issue = std::make_shared<std::function<void()>>();
    *issue = [&, client, issue] {
      if (cluster.now() >= t_end) {
        return;
      }
      double issued = cluster.now();
      client->CreateFile(cluster, NthFilePath(seq++),
                         [&, issued, issue](bool, const Value&) {
                           if (cluster.now() <= t_end) {
                             ++completed;
                             latencies.push_back(cluster.now() - issued);
                           }
                           (*issue)();
                         });
    };
    (*issue)();
  }
  cluster.RunUntil(t_end + 2000);

  ScaleResult result;
  result.partitions = partitions;
  result.throughput_ops_per_s = completed / 20.0;
  result.p50_latency_ms = Percentile(latencies, 50);
  return result;
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F5", "namespace throughput vs NameNode partitions (24 closed-loop clients)");

  double service_ms = std::max(0.5, MeasureOpCostMs());
  std::printf("per-op service time (measured from the real engine): %.2f ms\n\n", service_ms);

  std::printf("  %-12s %16s %14s %10s\n", "partitions", "throughput(op/s)", "p50 lat(ms)",
              "speedup");
  double base = 0;
  for (int partitions : {1, 2, 4}) {
    ScaleResult r = Run(partitions, service_ms);
    if (partitions == 1) {
      base = r.throughput_ops_per_s;
    }
    std::printf("  %-12d %16.1f %14.2f %9.2fx\n", r.partitions, r.throughput_ops_per_s,
                r.p50_latency_ms, r.throughput_ops_per_s / std::max(1e-9, base));
  }
  std::printf(
      "\nShape check vs paper: hash-partitioning the NameNode scales metadata throughput\n"
      "near-linearly to 4 partitions (the paper reports the same trend on EC2), because the\n"
      "namespace protocol is embarrassingly partitionable once paths are hashed.\n");
  return 0;
}
