// Shared output helpers for the figure/table benchmarks. Each bench binary prints the rows
// or series of the corresponding paper artifact; these helpers keep the format uniform.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/sim/stats.h"

namespace boom {

inline void PrintHeader(const std::string& id, const std::string& title) {
  std::printf("\n==== %s: %s ====\n", id.c_str(), title.c_str());
}

// Prints a CDF as `fraction value` pairs sampled at ~20 quantiles (enough to re-plot).
inline void PrintCdfSeries(const std::string& label, const std::vector<double>& samples) {
  std::printf("# CDF %s (n=%zu)  [fraction  value_ms]\n", label.c_str(), samples.size());
  if (samples.empty()) {
    std::printf("  (no samples)\n");
    return;
  }
  for (int q = 5; q <= 100; q += 5) {
    std::printf("  %.2f  %.1f\n", q / 100.0, Percentile(samples, q));
  }
}

inline void PrintSummaryRow(const std::string& label, const std::vector<double>& samples) {
  Summary s = Summarize(samples);
  std::printf("  %-28s n=%-5zu p25=%-8.1f p50=%-8.1f p75=%-8.1f p90=%-8.1f p99=%-8.1f max=%-8.1f\n",
              label.c_str(), s.n, s.p25, s.p50, s.p75, s.p90, s.p99, s.max);
}

}  // namespace boom

#endif  // BENCH_BENCH_UTIL_H_
