// F6 — Multi-tenant scheduling under open-loop production traffic: per-tenant job-latency
// SLOs (p50/p99/p999) and slot-share fairness for each scheduling policy, on the *same*
// arrival trace.
//
// The workload is the tenancy experiment: a Poisson arrival process with a diurnal rate
// curve, client population of one million ranked by Zipf(s=1.1), three tenants at a
// 0.6/0.3/0.1 traffic mix, offered load above cluster capacity at the diurnal peak. Every
// policy replays the identical trace (same seed -> byte-identical arrivals), so the
// latency and fairness differences are pure policy. The figure's claim: FIFO starves the
// light tenant (slot-share ratio far above 3) while one swapped-in Overlog module —
// fair-share — holds the ratio near 1 without giving up throughput.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/telemetry/slo.h"
#include "src/workload/tenancy.h"

namespace boom {
namespace {

struct PolicyResult {
  MrPolicy policy;
  SloReport slo;
  TenancyFairness fairness;
  uint64_t arrivals = 0;
  uint64_t completed = 0;
  uint64_t submitted = 0;
};

PolicyResult Run(MrPolicy policy) {
  MetricsRegistry::Global().Reset();
  TenancyOptions options;
  options.policy = policy;
  options.seed = 42;
  options.num_clients = 1000000;
  options.zipf_s = 1.1;
  options.tenant_capacities = {{0, 4}, {1, 3}, {2, 3}};

  Cluster cluster(options.seed);
  TenancyWorkload workload(cluster, options);
  cluster.RunUntil(options.horizon_ms);
  double deadline = options.horizon_ms + 120000;
  while (workload.total_completed() < workload.total_submitted() &&
         cluster.now() < deadline) {
    cluster.RunUntil(cluster.now() + 500);
  }

  PolicyResult result;
  result.policy = policy;
  result.slo = BuildSloReport(MetricsRegistry::Global());
  result.fairness = workload.Fairness();
  result.arrivals = workload.arrivals();
  result.completed = workload.total_completed();
  result.submitted = workload.total_submitted();
  return result;
}

void PrintJson(const std::vector<PolicyResult>& results) {
  std::printf("# JSON\n{\n  \"figure\": \"fig_tenancy\",\n  \"policies\": {");
  bool first = true;
  for (const PolicyResult& r : results) {
    std::printf("%s\n    \"%s\": {\"slot_share_ratio\": %.3f, \"arrivals\": %llu, "
                "\"completed\": %llu, \"tenants\": [",
                first ? "" : ",", MrPolicyName(r.policy), r.fairness.slot_share_ratio,
                static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.completed));
    first = false;
    for (size_t t = 0; t < r.slo.tenants.size(); ++t) {
      const TenantSlo& s = r.slo.tenants[t];
      std::printf("%s\n      {\"tenant\": %d, \"jobs\": %llu, \"p50_ms\": %.1f, "
                  "\"p99_ms\": %.1f, \"p999_ms\": %.1f}",
                  t == 0 ? "" : ",", s.tenant, static_cast<unsigned long long>(s.count),
                  s.p50_ms, s.p99_ms, s.p999_ms);
    }
    std::printf("\n    ]}");
  }
  std::printf("\n  }\n}\n");
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F6", "multi-tenant SLOs and fairness under open-loop skewed traffic");
  std::printf("workload: 1M Zipf(1.1) clients, 3 tenants (0.6/0.3/0.1), diurnal Poisson "
              "arrivals, identical trace per policy\n\n");

  const MrPolicy policies[] = {MrPolicy::kFifo, MrPolicy::kFairShare, MrPolicy::kCapacity,
                               MrPolicy::kLate};
  std::vector<PolicyResult> results;
  for (MrPolicy policy : policies) {
    PolicyResult r = Run(policy);
    std::printf("%-5s completed %llu/%llu jobs  slot_share_ratio=%.2f  (%llu contended "
                "samples)\n",
                MrPolicyName(r.policy), static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.submitted), r.fairness.slot_share_ratio,
                static_cast<unsigned long long>(r.fairness.contended_samples));
    for (const TenantSlo& s : r.slo.tenants) {
      std::printf("      tenant %d  jobs=%-4llu p50=%-8.1f p99=%-8.1f p999=%-8.1f\n",
                  s.tenant, static_cast<unsigned long long>(s.count), s.p50_ms, s.p99_ms,
                  s.p999_ms);
    }
    results.push_back(std::move(r));
  }
  std::printf("\n");
  PrintJson(results);
  return 0;
}
