// Ablation study (DESIGN.md): how much each engine optimization contributes. The monitored
// NameNode workload from T4 (namespace ops + metaprogrammed tracing with count rollups) is
// replayed with individual optimizations disabled:
//
//   A. full engine            — incremental aggregates + version skip + index catch-up
//   B. no incremental aggs    — rollups recompute from scratch whenever inputs change
//   C. no version skip        — every aggregate recomputes every tick, changed or not
//   D. no index catch-up      — any table change rebuilds dependent indexes in full
//
// B, C, and D each turn an O(delta) mechanism back into an O(state) one, so their cost grows
// with the run; the full engine's cost stays flat. This is the engineering lesson the JOL
// lineage encodes: declarative runtimes need incremental view maintenance to be viable.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/boomfs/nn_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

constexpr int kOps = 1200;

double RunConfig(bool incremental_aggs, bool version_skip, bool index_catchup) {
  Table::SetDisableIndexCatchupForBenchmarks(!index_catchup);
  EngineOptions opts;
  opts.address = "nn";
  opts.disable_incremental_aggregates = !incremental_aggs;
  opts.disable_aggregate_version_skip = !version_skip;
  Engine engine(opts);
  BOOM_CHECK(engine.InstallSource(BoomFsNnProgram()).ok());
  Result<Program> parsed = ParseProgram(BoomFsNnProgram());
  BOOM_CHECK(parsed.ok());
  TracingOptions trace_opts;
  trace_opts.tables = {"file", "fqpath", "ns_request"};
  BOOM_CHECK(engine.Install(MakeTracingProgram(*parsed, trace_opts)).ok());

  engine.Tick(0);
  double now = 1;
  auto op = [&engine, &now](int64_t id, const std::string& cmd, const std::string& path) {
    BOOM_CHECK(engine
                   .Enqueue("ns_request", Tuple{Value("nn"), Value(id), Value("client"),
                                                Value(cmd), Value(path), Value()})
                   .ok());
    engine.Tick(now);
    engine.Tick(now);
    now += 1;
  };
  for (int d = 0; d < 16; ++d) {
    op(-d - 1, "mkdir", "/d" + std::to_string(d));
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    op(i, "create", "/d" + std::to_string(i % 16) + "/f" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  BOOM_CHECK(engine.catalog().Get("file").size() == static_cast<size_t>(kOps) + 17);
  Table::SetDisableIndexCatchupForBenchmarks(false);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("ablation", "engine incremental-maintenance mechanisms, one disabled at a time");
  std::printf("%d monitored namespace ops (real wall-clock):\n\n", kOps);

  struct Config {
    const char* label;
    bool inc_agg, version_skip, index_catchup;
  };
  const Config configs[] = {
      {"A. full engine", true, true, true},
      {"B. no incremental aggregates", false, true, true},
      {"C. no aggregate version-skip", false, false, true},
      {"D. no index catch-up", true, true, false},
  };
  double base = 0;
  for (const Config& config : configs) {
    double ms = RunConfig(config.inc_agg, config.version_skip, config.index_catchup);
    if (base == 0) {
      base = ms;
    }
    std::printf("  %-32s %10.1f ms   %8.0f ops/s   %6.2fx vs full\n", config.label, ms,
                kOps / (ms / 1000.0), ms / base);
  }
  std::printf(
      "\nReading: each disabled mechanism re-introduces an O(state)-per-op cost, so its\n"
      "slowdown grows with the run length (double kOps and the ratios roughly double).\n");
  return 0;
}
