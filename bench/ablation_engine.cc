// Ablation study (DESIGN.md): how much each engine optimization contributes. The monitored
// NameNode workload from T4 (namespace ops + metaprogrammed tracing with count rollups) is
// replayed with individual optimizations disabled:
//
//   A. full engine            — incremental aggregates + version skip + index catch-up
//   B. no incremental aggs    — rollups recompute from scratch whenever inputs change
//   C. no version skip        — every aggregate recomputes every tick, changed or not
//   D. no index catch-up      — any table change rebuilds dependent indexes in full
//   E. no dirty-rule sched    — fixpoint rounds scan every rule, changed driver or not
//   F. cost-based optimizer   — A plus profile-guided re-planning (DESIGN.md §13); the
//                               one config that adds a mechanism instead of removing one
//
// B through E each turn an O(delta) mechanism back into an O(state) (or O(rules)) one, so
// their cost grows with the run; the full engine's cost stays flat. This is the engineering
// lesson the JOL lineage encodes: declarative runtimes need incremental view maintenance to
// be viable.

#include <chrono>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/boomfs/nn_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

constexpr int kOps = 1200;

double RunConfig(bool incremental_aggs, bool version_skip, bool index_catchup,
                 bool dirty_rules, size_t threads = 1, bool parallel_fixpoint = true,
                 bool optimizer = false) {
  Table::SetDisableIndexCatchupForBenchmarks(!index_catchup);
  EngineOptions opts;
  opts.address = "nn";
  opts.disable_incremental_aggregates = !incremental_aggs;
  opts.disable_aggregate_version_skip = !version_skip;
  opts.disable_dirty_rule_scheduling = !dirty_rules;
  opts.worker_threads = threads;
  opts.disable_parallel_fixpoint = !parallel_fixpoint;
  opts.enable_optimizer = optimizer;
  Engine engine(opts);
  Program nn_program = BoomFsNnProgram();
  BOOM_CHECK(engine.Install(nn_program).ok());
  TracingOptions trace_opts;
  trace_opts.tables = {"file", "fqpath", "ns_request"};
  BOOM_CHECK(engine.Install(MakeTracingProgram(nn_program, trace_opts)).ok());

  engine.Tick(0);
  double now = 1;
  auto op = [&engine, &now](int64_t id, const std::string& cmd, const std::string& path) {
    BOOM_CHECK(engine
                   .Enqueue("ns_request", Tuple{Value("nn"), Value(id), Value("client"),
                                                Value(cmd), Value(path), Value()})
                   .ok());
    engine.Tick(now);
    engine.Tick(now);
    now += 1;
  };
  for (int d = 0; d < 16; ++d) {
    op(-d - 1, "mkdir", "/d" + std::to_string(d));
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    op(i, "create", "/d" + std::to_string(i % 16) + "/f" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  BOOM_CHECK(engine.catalog().Get("file").size() == static_cast<size_t>(kOps) + 17);
  Table::SetDisableIndexCatchupForBenchmarks(false);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace
}  // namespace boom

int main(int argc, char** argv) {
  using namespace boom;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    }
  }

  struct Config {
    const char* label;
    const char* key;  // JSON workload name
    bool inc_agg, version_skip, index_catchup, dirty_rules;
    size_t threads = 1;
    bool parallel_fixpoint = true;
    bool optimizer = false;
  };
  // G and H run last: an engine with worker_threads > 1 flips tuple refcounts into their
  // (sticky, process-wide) atomic mode, which would taint the serial configs' numbers.
  // G vs H isolates the intra-fixpoint batcher itself: same pool, same atomic refcounts,
  // parallel evaluation on vs off. F is A plus the cost-based optimizer — the one config
  // that ADDS a mechanism instead of removing one.
  const Config configs[] = {
      {"A. full engine", "full_engine", true, true, true, true},
      {"B. no incremental aggregates", "no_incremental_aggregates", false, true, true, true},
      {"C. no aggregate version-skip", "no_aggregate_version_skip", false, false, true, true},
      {"D. no index catch-up", "no_index_catchup", true, true, false, true},
      {"E. no dirty-rule scheduling", "no_dirty_rule_scheduling", true, true, true, false},
      {"F. cost-based optimizer on", "cost_based_optimizer", true, true, true, true, 1, true,
       true},
      {"G. parallel fixpoint (4 threads)", "parallel_fixpoint_4t", true, true, true, true, 4,
       true},
      {"H. 4 threads, parallel eval off", "no_parallel_fixpoint_4t", true, true, true, true,
       4, false},
  };

  if (!json) {
    PrintHeader("ablation",
                "engine incremental-maintenance mechanisms, one disabled at a time");
    std::printf("%d monitored namespace ops (real wall-clock):\n\n", kOps);
  } else {
    std::printf("{\n  \"bench\": \"ablation_engine\",\n  \"workloads\": {\n");
  }
  // Warm the allocator and string interner so the first measured config is not penalized
  // relative to later ones; each config then takes the best of three runs.
  RunConfig(true, true, true, true);
  constexpr int kReps = 3;
  double base = 0;
  bool first = true;
  for (const Config& config : configs) {
    double ms = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      double run_ms = RunConfig(config.inc_agg, config.version_skip, config.index_catchup,
                                config.dirty_rules, config.threads,
                                config.parallel_fixpoint, config.optimizer);
      if (rep == 0 || run_ms < ms) {
        ms = run_ms;
      }
    }
    if (base == 0) {
      base = ms;
    }
    double ops_per_sec = kOps / (ms / 1000.0);
    if (json) {
      if (!first) {
        std::printf(",\n");
      }
      first = false;
      std::printf("    \"%s\": {\"ns_per_op\": %.0f, \"tuples_per_sec\": %.0f}", config.key,
                  ms * 1e6 / kOps, ops_per_sec);
    } else {
      std::printf("  %-32s %10.1f ms   %8.0f ops/s   %6.2fx vs full\n", config.label, ms,
                  ops_per_sec, ms / base);
    }
  }
  if (json) {
    std::printf("\n  }\n}\n");
  } else {
    std::printf(
        "\nReading: each disabled mechanism re-introduces an O(state)-per-op cost, so its\n"
        "slowdown grows with the run length (double kOps and the ratios roughly double).\n");
  }
  return 0;
}
