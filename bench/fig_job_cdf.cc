// F1 / F2 — CDFs of map and reduce task completion times for the four stack combinations
// {Hadoop, BOOM-MR} x {HDFS, BOOM-FS} (the paper's main performance figures).
//
// The paper ran wordcount on 101 EC2 nodes and found all four CDFs roughly comparable, with
// the BOOM variants slightly slower. Here the cluster is simulated; what distinguishes the
// combinations is *measured reality*: we first measure the real wall-clock cost of a
// namespace/scheduler operation on the Overlog engine vs the imperative baseline (a pilot
// run), then use those costs as the simulated service times of the JobTracker and as the
// per-task metadata overhead contributed by the file system. Task durations are lognormal
// (median 8s maps / 12s reduces), one map per input chunk, as in a wordcount job.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/boomfs/boomfs.h"
#include "src/boommr/boommr.h"
#include "src/workload/workload.h"

namespace boom {
namespace {

// Measures real wall-clock ms per namespace op for one NameNode implementation by running a
// pilot simulated FS and timing the whole loop.
double MeasureNsOpMs(FsKind kind) {
  Cluster cluster(555);
  FsSetupOptions opts;
  opts.kind = kind;
  opts.num_datanodes = 3;
  FsHandles handles = SetupFs(cluster, opts);
  SyncFs fs(cluster, handles.client);
  cluster.RunUntil(1200);
  constexpr int kOps = 400;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    fs.Mkdir("/p" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  double total_ms = std::chrono::duration<double, std::milli>(end - start).count();
  return total_ms / kOps;
}

struct ComboResult {
  std::string label;
  std::vector<double> map_times;
  std::vector<double> reduce_times;
  double job_time = 0;
};

ComboResult RunCombo(MrKind mr_kind, FsKind fs_kind, double mr_service_ms,
                     double fs_op_ms) {
  ComboResult result;
  result.label = std::string(MrKindName(mr_kind)) + "/" + FsKindName(fs_kind);

  Cluster cluster(99101);
  MrSetupOptions opts;
  opts.kind = mr_kind;
  opts.num_trackers = 20;
  opts.map_slots = 2;
  opts.reduce_slots = 2;
  opts.heartbeat_period_ms = 500;
  MrHandles handles = SetupMr(cluster, opts);
  // The JobTracker is a busy server: every heartbeat/progress/completion message costs the
  // measured per-op service time of its implementation.
  cluster.SetServiceTime(handles.jobtracker,
                         [mr_service_ms](const Message&) { return mr_service_ms; });

  JobDurationModel model;
  model.map_median_ms = 8000;
  model.reduce_median_ms = 12000;
  // Each task performs ~3 namespace round-trips against the FS under test (locate chunks,
  // open, report), so the FS choice shifts every task by a small constant.
  model.fs_overhead_ms = 3 * (2 * 0.7 + fs_op_ms);

  JobSpec spec;
  spec.job_id = handles.client->NextJobId();
  spec.client = handles.client->address();
  spec.num_maps = 160;
  spec.num_reduces = 20;
  spec.duration_ms = MakeDurationFn(model);
  int64_t job_id = spec.job_id;
  double finish = RunJobSync(cluster, handles, std::move(spec), 3600000);
  result.job_time = finish - handles.data_plane->metrics().job_submit_ms[job_id];
  result.map_times = handles.data_plane->metrics().TaskCompletionTimes(/*maps=*/true);
  result.reduce_times = handles.data_plane->metrics().TaskCompletionTimes(/*maps=*/false);
  return result;
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F1/F2", "map & reduce completion CDFs, {Hadoop,BOOM-MR} x {HDFS,BOOM-FS}");

  double boom_op = MeasureNsOpMs(FsKind::kBoomFs);
  double hdfs_op = MeasureNsOpMs(FsKind::kHdfsBaseline);
  std::printf("measured per-op cost (real wall-clock, used as simulated service time):\n");
  std::printf("  Overlog engine  : %.3f ms/op\n", boom_op);
  std::printf("  imperative C++  : %.3f ms/op  (ratio %.1fx)\n\n", hdfs_op,
              boom_op / std::max(1e-6, hdfs_op));

  struct Combo {
    MrKind mr;
    FsKind fs;
  };
  const Combo combos[] = {
      {MrKind::kHadoopBaseline, FsKind::kHdfsBaseline},
      {MrKind::kHadoopBaseline, FsKind::kBoomFs},
      {MrKind::kBoomMr, FsKind::kHdfsBaseline},
      {MrKind::kBoomMr, FsKind::kBoomFs},
  };
  std::vector<ComboResult> results;
  for (const Combo& combo : combos) {
    double mr_service = combo.mr == MrKind::kBoomMr ? boom_op : hdfs_op;
    double fs_op = combo.fs == FsKind::kBoomFs ? boom_op : hdfs_op;
    results.push_back(RunCombo(combo.mr, combo.fs, mr_service, fs_op));
  }

  std::printf("--- Figure 1: map task completion time (ms since job submission) ---\n");
  for (const ComboResult& r : results) {
    PrintCdfSeries(r.label + " (map)", r.map_times);
  }
  std::printf("\n--- Figure 2: reduce task completion time ---\n");
  for (const ComboResult& r : results) {
    PrintCdfSeries(r.label + " (reduce)", r.reduce_times);
  }
  std::printf("\n--- summary (job completion) ---\n");
  for (const ComboResult& r : results) {
    std::printf("  %-22s job=%0.1f ms  maps p50=%.0f p90=%.0f  reduces p50=%.0f p90=%.0f\n",
                r.label.c_str(), r.job_time, Percentile(r.map_times, 50),
                Percentile(r.map_times, 90), Percentile(r.reduce_times, 50),
                Percentile(r.reduce_times, 90));
  }
  std::printf(
      "\nShape check vs paper: the four CDFs should nearly overlap, with the BOOM variants\n"
      "shifted slightly right (the declarative control plane costs more per message but the\n"
      "job is dominated by task execution).\n");
  return 0;
}
