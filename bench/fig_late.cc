// F3 — Speculative execution with stragglers: task completion CDFs under no-speculation
// (FIFO) vs the LATE policy, for both the Overlog and the imperative JobTracker.
//
// The paper's experiment: inject stragglers, show that the LATE rules (a handful of Overlog)
// pull in the tail exactly like the imperative implementation. 25% of trackers run 6x slow;
// LATE should collapse the straggler tail of the CDF while FIFO inherits it.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/boommr/boommr.h"
#include "src/workload/workload.h"

namespace boom {
namespace {

struct RunResult {
  std::vector<double> map_times;
  std::vector<double> reduce_times;
  double job_time = 0;
  size_t speculative_attempts = 0;
};

RunResult Run(MrKind kind, MrPolicy policy) {
  Cluster cluster(60606);
  MrSetupOptions opts;
  opts.kind = kind;
  opts.policy = policy;
  opts.num_trackers = 20;
  opts.map_slots = 2;
  opts.reduce_slots = 2;
  opts.heartbeat_period_ms = 400;
  opts.progress_period_ms = 400;
  opts.speculative_cap = 12;
  opts.slow_task_fraction = 0.5;
  opts.tracker_slowdowns = StragglerSlowdowns(opts.num_trackers, 0.25, 6.0);
  MrHandles handles = SetupMr(cluster, opts);

  JobDurationModel model;
  model.map_median_ms = 6000;
  model.map_sigma = 0.3;
  model.reduce_median_ms = 9000;
  model.reduce_sigma = 0.3;

  JobSpec spec;
  spec.job_id = handles.client->NextJobId();
  spec.client = handles.client->address();
  spec.num_maps = 120;
  spec.num_reduces = 20;
  spec.duration_ms = MakeDurationFn(model);
  int64_t job_id = spec.job_id;
  double finish = RunJobSync(cluster, handles, std::move(spec), 7200000);

  RunResult result;
  const MrMetrics& metrics = handles.data_plane->metrics();
  result.job_time = finish - metrics.job_submit_ms.at(job_id);
  result.map_times = metrics.TaskCompletionTimes(/*maps=*/true);
  result.reduce_times = metrics.TaskCompletionTimes(/*maps=*/false);
  for (const AttemptRecord& a : metrics.attempts) {
    if (a.speculative) {
      ++result.speculative_attempts;
    }
  }
  return result;
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F3", "straggler mitigation: FIFO (no speculation) vs LATE, both JobTrackers");
  std::printf("workload: 120 maps + 20 reduces on 20 trackers, 25%% of trackers 6x slow\n\n");

  struct Config {
    MrKind kind;
    MrPolicy policy;
  };
  const Config configs[] = {
      {MrKind::kHadoopBaseline, MrPolicy::kFifo},
      {MrKind::kHadoopBaseline, MrPolicy::kLate},
      {MrKind::kBoomMr, MrPolicy::kFifo},
      {MrKind::kBoomMr, MrPolicy::kLate},
  };

  std::vector<std::pair<std::string, RunResult>> results;
  for (const Config& config : configs) {
    std::string label =
        std::string(MrKindName(config.kind)) + "-" + MrPolicyName(config.policy);
    results.emplace_back(label, Run(config.kind, config.policy));
  }

  std::printf("--- map completion CDFs ---\n");
  for (const auto& [label, r] : results) {
    PrintCdfSeries(label + " (map)", r.map_times);
  }
  std::printf("\n--- reduce completion CDFs ---\n");
  for (const auto& [label, r] : results) {
    PrintCdfSeries(label + " (reduce)", r.reduce_times);
  }
  std::printf("\n--- summary ---\n");
  for (const auto& [label, r] : results) {
    std::printf("  %-16s job=%8.0f ms   map p90=%8.0f p99=%8.0f   spec attempts=%zu\n",
                label.c_str(), r.job_time, Percentile(r.map_times, 90),
                Percentile(r.map_times, 99), r.speculative_attempts);
  }
  std::printf(
      "\nShape check vs paper: under both JobTrackers, LATE cuts the straggler tail (p90+)\n"
      "and total job time substantially; FIFO's tail stretches with the 6x stragglers.\n");
  return 0;
}
