// T4 — Monitoring overhead (paper rev F4): real wall-clock cost of running the NameNode
// program with metaprogrammed tracing rules and invariant checks installed, vs bare.
//
// This is a *real* measurement, not simulation: the same stream of namespace operations is
// pushed through two engines and the elapsed time compared. The paper reports that
// automatic tracing rewrites impose a modest constant overhead.

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/boomfs/nn_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"

namespace boom {
namespace {

constexpr int kOps = 1500;

double RunOps(Engine& engine) {
  engine.Tick(0);
  double now = 1;
  auto op = [&engine, &now](int64_t id, const std::string& cmd, const std::string& path) {
    Status s = engine.Enqueue("ns_request", Tuple{Value("nn"), Value(id), Value("client"),
                                                  Value(cmd), Value(path), Value()});
    BOOM_CHECK(s.ok());
    engine.Tick(now);
    engine.Tick(now);  // second timestep applies the @next state update
    now += 1;
  };
  // Directory skeleton (not timed).
  for (int d = 0; d < 16; ++d) {
    op(-d - 1, "mkdir", "/d" + std::to_string(d));
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    op(i, "create", "/d" + std::to_string(i % 16) + "/f" + std::to_string(i));
  }
  auto end = std::chrono::steady_clock::now();
  // Every create must have succeeded (file table: 16 dirs + root + kOps files).
  BOOM_CHECK(engine.catalog().Get("file").size() == static_cast<size_t>(kOps) + 17);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("T4", "monitoring overhead: metaprogrammed tracing + invariants vs bare");
  std::printf("%d namespace ops through the real Overlog engine (wall-clock):\n\n", kOps);

  EngineOptions opts;
  opts.address = "nn";

  // Bare NameNode.
  Engine bare(opts);
  BOOM_CHECK(bare.InstallSource(BoomFsNnProgram()).ok());
  double bare_ms = RunOps(bare);

  // NameNode + tracing of the core state tables + invariants.
  Engine traced(opts);
  BOOM_CHECK(traced.InstallSource(BoomFsNnProgram()).ok());
  Result<Program> parsed = ParseProgram(BoomFsNnProgram());
  BOOM_CHECK(parsed.ok());
  TracingOptions trace_opts;
  trace_opts.tables = {"file", "fqpath", "fchunk", "ns_request", "ns_response"};
  Program tracing = MakeTracingProgram(*parsed, trace_opts);
  BOOM_CHECK(traced.Install(tracing).ok());
  std::vector<std::string> violations;
  BOOM_CHECK(InstallInvariants(traced, BoomFsInvariantRules(3), &violations).ok());
  double traced_ms = RunOps(traced);

  double bare_rate = kOps / (bare_ms / 1000.0);
  double traced_rate = kOps / (traced_ms / 1000.0);
  std::printf("  %-34s %10.1f ms   %8.0f ops/s\n", "bare NameNode", bare_ms, bare_rate);
  std::printf("  %-34s %10.1f ms   %8.0f ops/s\n", "with tracing + invariants", traced_ms,
              traced_rate);
  std::printf("  overhead: %.1f%%  (trace tables now hold %zu + %zu rows)\n",
              (traced_ms / bare_ms - 1.0) * 100.0,
              traced.catalog().Get("trace_file").size(),
              traced.catalog().Get("trace_ns_request").size());
  std::printf("  invariant violations observed: %zu (expected 0)\n", violations.size());
  std::printf(
      "\nShape check vs paper: tracing every state-table insertion and continuously\n"
      "checking invariants costs a bounded constant factor, cheap enough to leave on — the\n"
      "paper's argument that metaprogrammed monitoring is nearly free to *write* and\n"
      "affordable to run.\n");
  return 0;
}
