// T4 — Monitoring overhead (paper rev F4): real wall-clock cost of running the NameNode
// program with monitoring attached, vs bare.
//
// This is a *real* measurement, not simulation: the same stream of namespace operations is
// pushed through several engines and the elapsed time compared. Configurations:
//   bare        telemetry compiled in but disabled — the "pay only when on" baseline
//   profiled    per-rule profiling enabled (EnableProfiling)
//   traced      metaprogrammed tracing rewrite + invariant rules installed
// Per-op latencies land in the metrics registry (one histogram per config) and the
// profiled engine's per-rule wall-time column is printed, so the bench exercises the same
// telemetry surface the systems use.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/boomfs/nn_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"
#include "src/telemetry/metrics.h"

namespace boom {
namespace {

constexpr int kOps = 1500;

double RunOps(Engine& engine, Histogram& per_op_us) {
  engine.Tick(0);
  double now = 1;
  auto op = [&engine, &now](int64_t id, const std::string& cmd, const std::string& path) {
    Status s = engine.Enqueue("ns_request", Tuple{Value("nn"), Value(id), Value("client"),
                                                  Value(cmd), Value(path), Value()});
    BOOM_CHECK(s.ok());
    engine.Tick(now);
    engine.Tick(now);  // second timestep applies the @next state update
    now += 1;
  };
  // Directory skeleton (not timed).
  for (int d = 0; d < 16; ++d) {
    op(-d - 1, "mkdir", "/d" + std::to_string(d));
  }
  auto start = std::chrono::steady_clock::now();
  auto last = start;
  for (int i = 0; i < kOps; ++i) {
    op(i, "create", "/d" + std::to_string(i % 16) + "/f" + std::to_string(i));
    auto t = std::chrono::steady_clock::now();
    per_op_us.Observe(std::chrono::duration<double, std::micro>(t - last).count());
    last = t;
  }
  auto end = std::chrono::steady_clock::now();
  // Every create must have succeeded (file table: 16 dirs + root + kOps files).
  BOOM_CHECK(engine.catalog().Get("file").size() == static_cast<size_t>(kOps) + 17);
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void PrintConfig(const char* name, double ms, double bare_ms) {
  std::printf("  %-34s %10.1f ms   %8.0f ops/s   %+6.1f%%\n", name, ms,
              kOps / (ms / 1000.0), (ms / bare_ms - 1.0) * 100.0);
}

void PrintTopRules(const Engine& engine, size_t k) {
  std::vector<const Engine::RuleProfile*> rules;
  for (const auto& [key, profile] : engine.rule_profiles()) {
    rules.push_back(&profile);
  }
  std::sort(rules.begin(), rules.end(),
            [](const Engine::RuleProfile* a, const Engine::RuleProfile* b) {
              return a->wall_us > b->wall_us;
            });
  if (rules.size() > k) {
    rules.resize(k);
  }
  std::printf("\n  per-rule profile, top %zu of %zu rules by wall time:\n", rules.size(),
              engine.rule_profiles().size());
  std::printf("    %-28s  %8s  %8s  %9s  %10s\n", "RULE", "EVALS", "TUPLES", "MAX/TICK",
              "WALL_US");
  for (const Engine::RuleProfile* r : rules) {
    std::string name = r->program + ":" + r->rule;
    std::printf("    %-28s  %8llu  %8llu  %9llu  %10.1f\n", name.c_str(),
                static_cast<unsigned long long>(r->evals),
                static_cast<unsigned long long>(r->tuples),
                static_cast<unsigned long long>(r->max_tuples_per_tick), r->wall_us);
  }
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("T4", "monitoring overhead: profiling and metaprogrammed tracing vs bare");
  std::printf("%d namespace ops through the real Overlog engine (wall-clock):\n\n", kOps);

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.Reset();

  EngineOptions opts;
  opts.address = "nn";

  // Bare NameNode: telemetry hooks compiled in, nothing enabled. This is the number to
  // compare against the pre-telemetry baseline — the hooks must be branch-cheap when off.
  Program nn_program = BoomFsNnProgram();
  Engine bare(opts);
  BOOM_CHECK(bare.Install(nn_program).ok());
  double bare_ms = RunOps(bare, registry.histogram("bench.t4.bare_op_us"));

  // Per-rule profiling on.
  Engine profiled(opts);
  BOOM_CHECK(profiled.Install(nn_program).ok());
  BOOM_CHECK(InstallProfiling(profiled).ok());
  double profiled_ms = RunOps(profiled, registry.histogram("bench.t4.profiled_op_us"));

  // NameNode + tracing of the core state tables + invariants.
  Engine traced(opts);
  BOOM_CHECK(traced.Install(nn_program).ok());
  TracingOptions trace_opts;
  trace_opts.tables = {"file", "fqpath", "fchunk", "ns_request", "ns_response"};
  Program tracing = MakeTracingProgram(nn_program, trace_opts);
  BOOM_CHECK(traced.Install(tracing).ok());
  std::vector<std::string> violations;
  BOOM_CHECK(InstallInvariants(traced, BoomFsInvariantProgram(3), &violations).ok());
  double traced_ms = RunOps(traced, registry.histogram("bench.t4.traced_op_us"));

  PrintConfig("bare NameNode (telemetry off)", bare_ms, bare_ms);
  PrintConfig("with per-rule profiling", profiled_ms, bare_ms);
  PrintConfig("with tracing + invariants", traced_ms, bare_ms);
  std::printf("  trace tables now hold %zu + %zu rows\n",
              traced.catalog().Get("trace_file").size(),
              traced.catalog().Get("trace_ns_request").size());
  std::printf("  invariant violations observed: %zu (expected 0)\n", violations.size());

  PrintTopRules(profiled, 5);

  std::printf("\n  per-op latency histograms (metrics registry):\n");
  for (const MetricRow& row : registry.Snapshot()) {
    if (row.name.rfind("bench.t4.", 0) == 0) {
      std::printf("    %-28s count=%llu  mean=%.1fus  p50=%.1f  p95=%.1f  p99=%.1f\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.count),
                  row.count > 0 ? row.sum / static_cast<double>(row.count) : 0.0, row.p50,
                  row.p95, row.p99);
    }
  }

  std::printf(
      "\nShape check vs paper: per-rule profiling and metaprogrammed tracing each cost a\n"
      "bounded constant factor over the bare engine, and the disabled hooks cost nothing\n"
      "measurable — monitoring is nearly free to *write* and affordable to run.\n");
  return 0;
}
