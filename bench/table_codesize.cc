// T1 / T2 — Code-size comparison (the paper's headline tables).
//
// The paper reports lines of Overlog vs lines of Java for each BOOM component and revision:
// BOOM-FS's NameNode is a few hundred lines of rules vs ~21,700 lines of Java in HDFS, and
// each major feature (Paxos availability, partitioning, monitoring) lands in tens of rules.
// We regenerate the same table for this reproduction: every Overlog program is parsed and
// counted (rules, tables, semicolon-free source lines), and the imperative C++ baselines
// are counted from their sources.

#include <cctype>
#include <set>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/strings.h"
#include "src/boomfs/ha.h"
#include "src/boomfs/nn_program.h"
#include "src/boommr/jt_program.h"
#include "src/monitor/meta.h"
#include "src/overlog/parser.h"
#include "src/paxos/paxos_program.h"

#ifndef BOOM_SOURCE_DIR
#define BOOM_SOURCE_DIR "."
#endif

namespace boom {
namespace {

struct OlgStats {
  size_t rules = 0;
  size_t tables = 0;
  size_t lines = 0;  // non-blank, non-comment source lines
};

size_t CountSourceLines(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  size_t n = 0;
  bool in_block_comment = false;
  while (std::getline(is, line)) {
    std::string_view s = StripWhitespace(line);
    if (in_block_comment) {
      if (s.find("*/") != std::string_view::npos) {
        in_block_comment = false;
      }
      continue;
    }
    if (s.empty() || s.substr(0, 2) == "//" || s.substr(0, 2) == "/*") {
      if (s.substr(0, 2) == "/*" && s.find("*/") == std::string_view::npos) {
        in_block_comment = true;
      }
      continue;
    }
    // Ignore the ///... separator banners.
    if (s.find_first_not_of('/') == std::string_view::npos) {
      continue;
    }
    ++n;
  }
  return n;
}

// Programs are built (modules + typed parameters), so counting goes through the AST:
// rules/tables directly, source lines from the canonical rendering.
OlgStats AnalyzeOlg(const Program& program) {
  OlgStats stats;
  stats.lines = CountSourceLines(program.ToString());
  stats.rules = program.rules.size();
  stats.tables = program.tables.size();
  return stats;
}

size_t CountCppLines(const std::vector<std::string>& relative_paths) {
  size_t total = 0;
  for (const std::string& rel : relative_paths) {
    std::ifstream in(std::string(BOOM_SOURCE_DIR) + "/" + rel);
    if (!in) {
      std::fprintf(stderr, "missing source file %s\n", rel.c_str());
      continue;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    total += CountSourceLines(buf.str());
  }
  return total;
}

void Row(const char* component, const OlgStats& olg, size_t cpp_lines,
         const char* cpp_what) {
  std::printf("  %-34s %6zu %8zu %8zu   %8zu  (%s)\n", component, olg.rules, olg.tables,
              olg.lines, cpp_lines, cpp_what);
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;

  PrintHeader("T1/T2", "code size: Overlog rules vs imperative C++ (paper Tables 1-2)");
  std::printf("  %-34s %6s %8s %8s   %8s\n", "component", "rules", "tables", "olg-loc",
              "c++-loc");

  // --- BOOM-FS revisions ---
  NnProgramOptions f1;
  f1.with_failure_detector = false;
  OlgStats fs_core = AnalyzeOlg(BoomFsNnProgram(f1));
  size_t hdfs_loc = CountCppLines({"src/hdfs_baseline/namenode.cc",
                                   "src/hdfs_baseline/namenode.h"});
  Row("BOOM-FS NameNode (F1 core)", fs_core, hdfs_loc, "HDFS-baseline NameNode");

  OlgStats fs_fd = AnalyzeOlg(BoomFsNnProgram());
  Row("BOOM-FS + failure detector", fs_fd, hdfs_loc, "same baseline");

  PaxosProgramOptions px;
  px.peers = {"a", "b", "c"};
  OlgStats paxos = AnalyzeOlg(PaxosProgram(px));
  Row("Paxos (F2 availability)", paxos, 0, "no imperative twin: tested by property");

  OlgStats bridge = AnalyzeOlg(HaBridgeProgram());
  Row("HA bridge (F2 glue)", bridge, 0, "-");

  std::printf("  %-34s %6s %8s %8s   %8zu  (client routing fn)\n",
              "Partitioning (F3)", "0", "0", "0",
              CountCppLines({"src/boomfs/partition.cc"}));

  // --- BOOM-MR policies ---
  JtProgramOptions fifo;
  fifo.policy = MrPolicy::kFifo;
  OlgStats jt_fifo = AnalyzeOlg(BoomMrJtProgram(fifo));
  size_t hadoop_loc = CountCppLines({"src/mr_baseline/jobtracker.cc",
                                     "src/mr_baseline/jobtracker.h"});
  Row("BOOM-MR JobTracker (FIFO)", jt_fifo, hadoop_loc, "Hadoop-baseline JobTracker");

  JtProgramOptions late;
  late.policy = MrPolicy::kLate;
  OlgStats jt_late = AnalyzeOlg(BoomMrJtProgram(late));
  OlgStats late_only;
  late_only.rules = jt_late.rules - jt_fifo.rules;
  late_only.tables = jt_late.tables - jt_fifo.tables;
  late_only.lines = jt_late.lines - jt_fifo.lines;
  Row("  LATE policy delta", late_only, 0, "policy = data: swap the rule set");

  // --- Monitoring (F4): rewrite output size for the FS program ---
  Program tracing = MakeTracingProgram(BoomFsNnProgram());
  OlgStats mon;
  mon.rules = tracing.rules.size();
  mon.tables = tracing.tables.size();
  mon.lines = 0;  // generated mechanically, zero hand-written lines
  Row("Monitoring (F4, generated)", mon, 0, "metaprogrammed from the FS program");

  std::printf(
      "\nShape check vs paper: the Overlog NameNode is ~%zu lines of rules against %zu"
      "\nlines for the imperative twin of the *same* protocol (the paper compared against"
      "\nproduction HDFS at ~21.7k lines); Paxos and LATE land in tens of rules each.\n",
      fs_fd.lines, hdfs_loc);
  return 0;
}
