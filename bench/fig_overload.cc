// F7 — Metastable overload and recovery on the BOOM-FS metadata plane: per-second
// goodput of the open-loop FS-metadata workload through a 4x arrival burst, with the
// admission gateway + client retry budgets ON vs OFF on the *identical* seeded trace.
//
// The claim: with admission control (brownout sheds writes under backlog, shed responses
// carry retry-after hints) and budgeted full-jitter client retries, goodput dips during
// the burst and recovers to >= 90% of the pre-burst baseline once the burst clears. With
// both disabled — the pre-admission configuration — queued requests outlive the client
// timeout and the unbudgeted retry stream replaces the burst as the offered load: goodput
// collapses and *stays* collapsed long after the trigger ends (Bronson et al.'s
// metastable-failure signature, HotOS 2021).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/slo.h"
#include "src/workload/fs_load.h"

namespace boom {
namespace {

constexpr double kHorizonMs = 30000;
constexpr double kBurstStartMs = 10000;
constexpr double kBurstEndMs = 14000;
constexpr double kDrainMs = 10000;

struct RunResult {
  const char* label;
  FsLoadReport report;
  SloReport slo;
  std::vector<uint64_t> windows;  // successful ops per 1s window
  double pre_goodput = 0;         // ops/s, [4s, burst_start)
  double post_goodput = 0;        // ops/s, [burst_end + 6s, horizon - 1s)
  uint64_t gw_shed = 0;
};

RunResult Run(const char* label, bool with_admission) {
  MetricsRegistry::Global().Reset();
  FsLoadOptions options;
  options.seed = 42;
  options.horizon_ms = kHorizonMs;
  options.burst_factor = 4.0;  // ~250 ops/s base vs a 625 ops/s NameNode: only the
  options.burst_start_ms = kBurstStartMs;  // burst exceeds capacity
  options.burst_end_ms = kBurstEndMs;
  options.with_admission = with_admission;
  options.gateway.tenant_quota = 1000000;  // brownout is the mechanism under test
  options.gateway.queue_bound_ms = 400;
  options.gateway.retry_after_ms = 500;
  if (with_admission) {
    options.retry_budget_cap = 16;
    options.honor_retry_after = true;
    options.full_jitter = true;
  } else {
    // The pre-admission client: unbounded retries, legacy jitter, no server hints.
    options.retry_budget_cap = 0;
    options.honor_retry_after = false;
    options.full_jitter = false;
    options.max_op_retries = 6;
  }

  Cluster cluster(options.seed);
  FsLoadWorkload workload(cluster, options);
  cluster.RunUntil(kHorizonMs + kDrainMs);

  RunResult result;
  result.label = label;
  result.report = workload.report();
  result.slo = BuildSloReport(MetricsRegistry::Global());
  result.windows = workload.goodput_windows();
  result.pre_goodput = workload.GoodputBetween(4000, kBurstStartMs);
  result.post_goodput = workload.GoodputBetween(kBurstEndMs + 6000, kHorizonMs - 1000);
  result.gw_shed = MetricsRegistry::Global().counter("fs.gw.shed").value();
  return result;
}

void PrintRun(const RunResult& r) {
  const FsLoadReport& rep = r.report;
  double recovery = r.pre_goodput > 0 ? r.post_goodput / r.pre_goodput : 0;
  std::printf("%-14s pre=%-7.1f post=%-7.1f recovery=%.2f  %s\n", r.label, r.pre_goodput,
              r.post_goodput, recovery, recovery >= 0.9 ? "RECOVERED" : "COLLAPSED");
  std::printf("  arrivals=%llu ok=%llu shed=%llu timeouts=%llu retries=%llu "
              "gave_up=%llu gw_shed=%llu\n",
              static_cast<unsigned long long>(rep.arrivals),
              static_cast<unsigned long long>(rep.succeeded),
              static_cast<unsigned long long>(rep.shed),
              static_cast<unsigned long long>(rep.timeouts),
              static_cast<unsigned long long>(rep.retries),
              static_cast<unsigned long long>(rep.gave_up),
              static_cast<unsigned long long>(r.gw_shed));
  for (const TenantSlo& t : r.slo.tenants) {
    std::printf("  tenant %d  ops=%-5llu p50=%-7.1f p99=%-8.1f shed=%-5llu "
                "rejected=%-5llu retries=%llu\n",
                t.tenant, static_cast<unsigned long long>(t.count), t.p50_ms, t.p99_ms,
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.retries));
  }
}

void PrintJson(const std::vector<RunResult>& results) {
  std::printf("# JSON\n{\n  \"figure\": \"fig_overload\",\n  \"burst_ms\": [%.0f, %.0f],"
              "\n  \"configs\": {",
              kBurstStartMs, kBurstEndMs);
  bool first = true;
  for (const RunResult& r : results) {
    double recovery = r.pre_goodput > 0 ? r.post_goodput / r.pre_goodput : 0;
    std::printf("%s\n    \"%s\": {\"pre_goodput\": %.1f, \"post_goodput\": %.1f, "
                "\"recovery\": %.3f, \"shed\": %llu, \"timeouts\": %llu, "
                "\"retries\": %llu, \"goodput_per_s\": [",
                first ? "" : ",", r.label, r.pre_goodput, r.post_goodput, recovery,
                static_cast<unsigned long long>(r.report.shed),
                static_cast<unsigned long long>(r.report.timeouts),
                static_cast<unsigned long long>(r.report.retries));
    first = false;
    for (size_t i = 0; i < r.windows.size(); ++i) {
      std::printf("%s%llu", i == 0 ? "" : ", ",
                  static_cast<unsigned long long>(r.windows[i]));
    }
    std::printf("]}");
  }
  std::printf("\n  }\n}\n");
}

}  // namespace
}  // namespace boom

int main() {
  using namespace boom;
  PrintHeader("F7", "metastable overload: goodput through a 4x burst, admission on vs off");
  std::printf("workload: FS-metadata mix (create/open/ls/rename/delete), 3 tenants, "
              "~250 ops/s offered vs 625 ops/s NameNode capacity,\n"
              "burst 4x in [%.0fs, %.0fs), identical seeded trace per config\n\n",
              kBurstStartMs / 1000, kBurstEndMs / 1000);

  std::vector<RunResult> results;
  results.push_back(Run("admission+budget", true));
  PrintRun(results.back());
  results.push_back(Run("unprotected", false));
  PrintRun(results.back());
  std::printf("\n");
  PrintJson(results);
  return 0;
}
