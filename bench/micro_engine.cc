// Engine microbenchmarks (google-benchmark): not a paper figure, but the calibration data
// behind the simulated service times used in the cluster figures, and a regression guard
// for the Overlog runtime itself.

#include <benchmark/benchmark.h>

#include "src/base/logging.h"

#include "src/boomfs/nn_program.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

void BM_TupleHashEquality(benchmark::State& state) {
  Tuple a{Value(42), Value("some/path/name"), Value(3.5)};
  Tuple b{Value(42), Value("some/path/name"), Value(3.5)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
    benchmark::DoNotOptimize(a.hash());
  }
}
BENCHMARK(BM_TupleHashEquality);

void BM_TableInsert(benchmark::State& state) {
  TableDef def;
  def.name = "t";
  def.columns = {"A", "B", "C"};
  def.key_columns = {0};
  int64_t i = 0;
  Table table(def);
  for (auto _ : state) {
    table.Insert(Tuple{Value(i++), Value("payload"), Value(i * 2)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableInsert);

void BM_IndexProbe(benchmark::State& state) {
  TableDef def;
  def.name = "t";
  def.columns = {"A", "B"};
  def.key_columns = {0};
  Table table(def);
  for (int64_t i = 0; i < 10000; ++i) {
    table.Insert(Tuple{Value(i), Value(i % 100)});
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Probe({1}, Tuple{Value(probe++ % 100)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexProbe);

void BM_ParseNameNodeProgram(benchmark::State& state) {
  std::string source = BoomFsNnProgram();
  for (auto _ : state) {
    Result<Program> p = ParseProgram(source);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_ParseNameNodeProgram);

void BM_TransitiveClosureFixpoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.address = "n";
    Engine engine(opts);
    Status s = engine.InstallSource(R"(
      program tc;
      table link(X, Y);
      table reach(X, Y);
      r1 reach(X, Y) :- link(X, Y);
      r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
    )");
    BOOM_CHECK(s.ok());
    for (int i = 0; i < n; ++i) {
      BOOM_CHECK(engine.Enqueue("link", Tuple{Value(i), Value(i + 1)}).ok());
    }
    state.ResumeTiming();
    engine.Tick(0);
    benchmark::DoNotOptimize(engine.catalog().Get("reach").size());
  }
  state.SetLabel("chain length " + std::to_string(n));
}
BENCHMARK(BM_TransitiveClosureFixpoint)->Arg(32)->Arg(128);

void BM_NamespaceOp(benchmark::State& state) {
  EngineOptions opts;
  opts.address = "nn";
  Engine engine(opts);
  BOOM_CHECK(engine.InstallSource(BoomFsNnProgram()).ok());
  engine.Tick(0);
  BOOM_CHECK(engine
                 .Enqueue("ns_request", Tuple{Value("nn"), Value(0), Value("c"),
                                              Value("mkdir"), Value("/base"), Value()})
                 .ok());
  engine.Tick(1);
  engine.Tick(1);
  int64_t i = 1;
  double now = 2;
  for (auto _ : state) {
    BOOM_CHECK(engine
                   .Enqueue("ns_request",
                            Tuple{Value("nn"), Value(i), Value("c"), Value("create"),
                                  Value("/base/f" + std::to_string(i)), Value()})
                   .ok());
    engine.Tick(now);
    engine.Tick(now);
    ++i;
    now += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NamespaceOp);

void BM_PaxosDecree(benchmark::State& state) {
  Cluster cluster(11);
  std::vector<std::string> peers = {"p0", "p1", "p2"};
  for (int i = 0; i < 3; ++i) {
    PaxosProgramOptions popts;
    popts.peers = peers;
    popts.my_index = i;
    std::string source = PaxosProgram(popts);
    cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [source](Engine& engine) {
      BOOM_CHECK(engine.InstallSource(source).ok());
    });
  }
  cluster.RunUntil(2000);
  int64_t i = 0;
  for (auto _ : state) {
    cluster.Send("p0", "p0", "px_request",
                 Tuple{Value("p0"), Value("cmd" + std::to_string(i++))});
    size_t want = cluster.engine("p0")->catalog().Get("decided").size() + 1;
    while (cluster.engine("p0")->catalog().Get("decided").size() < want) {
      cluster.RunUntil(cluster.now() + 10);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("full decree incl. virtual network RTTs");
}
BENCHMARK(BM_PaxosDecree);

}  // namespace
}  // namespace boom

BENCHMARK_MAIN();
