// Engine microbenchmarks: not a paper figure, but the calibration data behind the simulated
// service times used in the cluster figures, and a regression guard for the Overlog runtime
// itself.
//
// Two modes:
//   micro_engine            google-benchmark suite (exploratory; all BM_* below)
//   micro_engine --json     fixed named workloads, machine-readable output consumed by
//                           scripts/bench.sh -> BENCH_engine.json (the tracked perf
//                           trajectory; see docs/PERFORMANCE.md)
//
// The JSON workloads are the regression-gated set: each is run kJsonReps times and the best
// rep is reported (min ns/op), which suppresses scheduler noise without hiding real
// regressions.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/base/logging.h"

#include "src/boomfs/nn_program.h"
#include "src/overlog/engine.h"
#include "src/overlog/parser.h"
#include "src/paxos/paxos_program.h"
#include "src/sim/cluster.h"

namespace boom {
namespace {

// ---------------------------------------------------------------------------
// google-benchmark suite (exploratory mode)
// ---------------------------------------------------------------------------

void BM_TupleHashEquality(benchmark::State& state) {
  Tuple a{Value(42), Value("some/path/name"), Value(3.5)};
  Tuple b{Value(42), Value("some/path/name"), Value(3.5)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(a == b);
    benchmark::DoNotOptimize(a.hash());
  }
}
BENCHMARK(BM_TupleHashEquality);

void BM_TableInsert(benchmark::State& state) {
  TableDef def;
  def.name = "t";
  def.columns = {"A", "B", "C"};
  def.key_columns = {0};
  int64_t i = 0;
  Table table(def);
  for (auto _ : state) {
    table.Insert(Tuple{Value(i++), Value("payload"), Value(i * 2)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableInsert);

void BM_IndexProbe(benchmark::State& state) {
  TableDef def;
  def.name = "t";
  def.columns = {"A", "B"};
  def.key_columns = {0};
  Table table(def);
  for (int64_t i = 0; i < 10000; ++i) {
    table.Insert(Tuple{Value(i), Value(i % 100)});
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Probe({1}, Tuple{Value(probe++ % 100)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexProbe);

void BM_ParseNameNodeProgram(benchmark::State& state) {
  // The canonical rendering of the built program round-trips through the parser.
  std::string source = BoomFsNnProgram().ToString();
  for (auto _ : state) {
    Result<Program> p = ParseProgram(source);
    benchmark::DoNotOptimize(p.ok());
  }
}
BENCHMARK(BM_ParseNameNodeProgram);

void BM_TransitiveClosureFixpoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    EngineOptions opts;
    opts.address = "n";
    Engine engine(opts);
    Status s = engine.InstallSource(R"(
      program tc;
      table link(X, Y);
      table reach(X, Y);
      r1 reach(X, Y) :- link(X, Y);
      r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
    )");
    BOOM_CHECK(s.ok());
    for (int i = 0; i < n; ++i) {
      BOOM_CHECK(engine.Enqueue("link", Tuple{Value(i), Value(i + 1)}).ok());
    }
    state.ResumeTiming();
    engine.Tick(0);
    benchmark::DoNotOptimize(engine.catalog().Get("reach").size());
  }
  state.SetLabel("chain length " + std::to_string(n));
}
BENCHMARK(BM_TransitiveClosureFixpoint)->Arg(32)->Arg(128);

void BM_NamespaceOp(benchmark::State& state) {
  EngineOptions opts;
  opts.address = "nn";
  Engine engine(opts);
  BOOM_CHECK(engine.Install(BoomFsNnProgram()).ok());
  engine.Tick(0);
  BOOM_CHECK(engine
                 .Enqueue("ns_request", Tuple{Value("nn"), Value(0), Value("c"),
                                              Value("mkdir"), Value("/base"), Value()})
                 .ok());
  engine.Tick(1);
  engine.Tick(1);
  int64_t i = 1;
  double now = 2;
  for (auto _ : state) {
    BOOM_CHECK(engine
                   .Enqueue("ns_request",
                            Tuple{Value("nn"), Value(i), Value("c"), Value("create"),
                                  Value("/base/f" + std::to_string(i)), Value()})
                   .ok());
    engine.Tick(now);
    engine.Tick(now);
    ++i;
    now += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_NamespaceOp);

void BM_PaxosDecree(benchmark::State& state) {
  Cluster cluster(11);
  std::vector<std::string> peers = {"p0", "p1", "p2"};
  for (int i = 0; i < 3; ++i) {
    PaxosProgramOptions popts;
    popts.peers = peers;
    popts.my_index = i;
    Program program = PaxosProgram(popts);
    cluster.AddOverlogNode(peers[static_cast<size_t>(i)], [program](Engine& engine) {
      BOOM_CHECK(engine.Install(program).ok());
    });
  }
  cluster.RunUntil(2000);
  int64_t i = 0;
  for (auto _ : state) {
    cluster.Send("p0", "p0", "px_request",
                 Tuple{Value("p0"), Value("cmd" + std::to_string(i++))});
    size_t want = cluster.engine("p0")->catalog().Get("decided").size() + 1;
    while (cluster.engine("p0")->catalog().Get("decided").size() < want) {
      cluster.RunUntil(cluster.now() + 10);
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("full decree incl. virtual network RTTs");
}
BENCHMARK(BM_PaxosDecree);

// ---------------------------------------------------------------------------
// --json mode: the tracked workload set
// ---------------------------------------------------------------------------

using BenchClock = std::chrono::steady_clock;

double ElapsedNs(BenchClock::time_point t0) {
  return std::chrono::duration<double, std::nano>(BenchClock::now() - t0).count();
}

struct WorkloadResult {
  double ns_per_op = 0;
  double ops_per_sec = 0;
};

WorkloadResult FromTotal(double total_ns, double ops) {
  WorkloadResult r;
  r.ns_per_op = total_ns / ops;
  r.ops_per_sec = ops / (total_ns / 1e9);
  return r;
}

constexpr int kJsonReps = 5;

template <typename Fn>
WorkloadResult BestOf(Fn&& fn, int reps = kJsonReps) {
  WorkloadResult best;
  for (int rep = 0; rep < reps; ++rep) {
    WorkloadResult r = fn();
    if (rep == 0 || r.ns_per_op < best.ns_per_op) {
      best = r;
    }
  }
  return best;
}

// tuple_hash_equality: Value/Tuple comparison + hash inner loop (the join-probe primitive).
WorkloadResult RunTupleHashEquality() {
  return BestOf([] {
    Tuple a{Value(42), Value("some/path/name"), Value(3.5)};
    Tuple b{Value(42), Value("some/path/name"), Value(3.5)};
    constexpr int kIters = 2000000;
    auto t0 = BenchClock::now();
    for (int i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(a == b);
      benchmark::DoNotOptimize(a.hash());
    }
    return FromTotal(ElapsedNs(t0), kIters);
  });
}

// table_insert: keyed inserts with a string payload column. The most scheduler-sensitive
// workload in the set (300k map-node allocations per rep dominate, and a timeslice that
// lands mid-rep inflates every rep in a 5-rep window), so it gets extra reps to make the
// best-of robust on a loaded single-core box.
WorkloadResult RunTableInsert() {
  return BestOf(
      [] {
        TableDef def;
        def.name = "t";
        def.columns = {"A", "B", "C"};
        def.key_columns = {0};
        Table table(def);
        constexpr int64_t kIters = 300000;
        auto t0 = BenchClock::now();
        for (int64_t i = 0; i < kIters; ++i) {
          table.Insert(Tuple{Value(i), Value("payload"), Value(i * 2)});
        }
        return FromTotal(ElapsedNs(t0), kIters);
      },
      3 * kJsonReps);
}

// index_probe: secondary-index probes against a warm 10k-row table.
WorkloadResult RunIndexProbe() {
  return BestOf([] {
    TableDef def;
    def.name = "t";
    def.columns = {"A", "B"};
    def.key_columns = {0};
    Table table(def);
    for (int64_t i = 0; i < 10000; ++i) {
      table.Insert(Tuple{Value(i), Value(i % 100)});
    }
    constexpr int64_t kIters = 500000;
    std::vector<size_t> cols = {1};
    auto t0 = BenchClock::now();
    for (int64_t i = 0; i < kIters; ++i) {
      benchmark::DoNotOptimize(table.Probe(cols, Tuple{Value(i % 100)}));
    }
    return FromTotal(ElapsedNs(t0), kIters);
  });
}

// join_heavy: string-keyed transitive closure over a chain — every derived tuple is one
// recursive join probe plus head construction; ns/op is per derived reach() tuple. String
// node names mirror the paper's workloads (paths, host names), which key joins on strings.
WorkloadResult RunJoinHeavy() {
  constexpr int kChain = 160;
  return BestOf([] {
    EngineOptions opts;
    opts.address = "n";
    Engine engine(opts);
    Status s = engine.InstallSource(R"(
      program tc;
      table link(X, Y);
      table reach(X, Y);
      r1 reach(X, Y) :- link(X, Y);
      r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
    )");
    BOOM_CHECK(s.ok());
    auto node = [](int i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "n%04d", i);
      return std::string(buf);
    };
    for (int i = 0; i < kChain; ++i) {
      BOOM_CHECK(engine.Enqueue("link", Tuple{Value(node(i)), Value(node(i + 1))}).ok());
    }
    auto t0 = BenchClock::now();
    engine.Tick(0);
    double ns = ElapsedNs(t0);
    size_t reach = engine.catalog().Get("reach").size();
    BOOM_CHECK(reach == static_cast<size_t>(kChain) * (kChain + 1) / 2);
    return FromTotal(ns, static_cast<double>(reach));
  });
}

// churn_heavy: many installed rule families (the multi-program NameNode+Paxos+monitor
// setting), but each tick only churns a handful of keys in one family. Measures how much
// fixpoint overhead idle rules impose; ns/op is per derived tuple.
WorkloadResult RunChurnHeavy() {
  constexpr int kFamilies = 64;
  constexpr int kTicks = 400;
  constexpr int kKeysPerTick = 4;
  std::string source = "program churn;\n";
  for (int f = 0; f < kFamilies; ++f) {
    std::string n = std::to_string(f);
    source += "table in" + n + "(K, V) keys(0);\n";
    source += "table out" + n + "(K, V) keys(0);\n";
    source += "c" + n + " out" + n + "(K, V) :- in" + n + "(K, V);\n";
  }
  return BestOf([&source] {
    EngineOptions opts;
    opts.address = "n";
    Engine engine(opts);
    BOOM_CHECK(engine.InstallSource(source).ok());
    engine.Tick(0);
    uint64_t derivations = 0;
    double total_ns = 0;
    for (int t = 0; t < kTicks; ++t) {
      int f = t % kFamilies;
      std::string table = "in" + std::to_string(f);
      for (int k = 0; k < kKeysPerTick; ++k) {
        BOOM_CHECK(engine
                       .Enqueue(table, Tuple{Value("key" + std::to_string(k)),
                                             Value("v" + std::to_string(t) + "_" +
                                                   std::to_string(k))})
                       .ok());
      }
      auto t0 = BenchClock::now();
      Engine::TickResult r = engine.Tick(t + 1);
      total_ns += ElapsedNs(t0);
      derivations += r.derivations;
    }
    BOOM_CHECK(derivations == static_cast<uint64_t>(kTicks) * kKeysPerTick);
    return FromTotal(total_ns, static_cast<double>(derivations));
  });
}

// namespace_op: end-to-end BOOM-FS NameNode create ops (the T2 primitive); ns/op per
// namespace operation including both engine ticks.
WorkloadResult RunNamespaceOp() {
  constexpr int kOps = 400;
  return BestOf([] {
    EngineOptions opts;
    opts.address = "nn";
    Engine engine(opts);
    BOOM_CHECK(engine.Install(BoomFsNnProgram()).ok());
    engine.Tick(0);
    BOOM_CHECK(engine
                   .Enqueue("ns_request", Tuple{Value("nn"), Value(0), Value("c"),
                                                Value("mkdir"), Value("/base"), Value()})
                   .ok());
    engine.Tick(1);
    engine.Tick(1);
    double now = 2;
    auto t0 = BenchClock::now();
    for (int64_t i = 1; i <= kOps; ++i) {
      BOOM_CHECK(engine
                     .Enqueue("ns_request",
                              Tuple{Value("nn"), Value(i), Value("c"), Value("create"),
                                    Value("/base/f" + std::to_string(i)), Value()})
                     .ok());
      engine.Tick(now);
      engine.Tick(now);
      now += 1;
    }
    return FromTotal(ElapsedNs(t0), kOps);
  });
}

// ---------------------------------------------------------------------------
// --json --threads N: parallel scaling workloads
// ---------------------------------------------------------------------------
//
// Four independent engine shards hosted as cluster nodes, dispatched by the cluster's
// parallel tick batcher. The shard count is fixed at any thread count, so tuples_per_sec
// across --threads values measures strong scaling of the dispatcher (threads=1 runs the
// same workload through the serial event loop). scripts/bench.sh sweeps --threads 1,2,4
// into the parallel_scaling block of BENCH_engine.json; each count runs in its own
// process, so the threads=1 leg never flips tuples into atomic-refcount mode.

constexpr int kScalingShards = 4;

// join_heavy: per shard, the string-keyed transitive closure of a 160-link chain. All
// shard seed ticks land at t=0 and run as one parallel batch; each tick is a full
// multi-round fixpoint, so nearly all wall time is inside the batch.
WorkloadResult RunScalingJoinHeavy(size_t threads) {
  constexpr int kChain = 160;
  return BestOf([threads] {
    ClusterOptions copts;
    copts.worker_threads = threads;
    Cluster cluster(1, copts);
    // Shard-distinct node names: partitioned nodes hold disjoint data. (Sharing the same
    // interned strings across shards would also make every worker bump the same refcount
    // cache lines — measured as a >4x slowdown, a false-sharing artifact, not dispatch.)
    auto node = [](int sh, int i) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "s%dn%04d", sh, i);
      return std::string(buf);
    };
    for (int sh = 0; sh < kScalingShards; ++sh) {
      Engine& engine =
          cluster.AddOverlogNode("shard" + std::to_string(sh), [](Engine& e) {
            BOOM_CHECK(e.InstallSource(R"(
              program tc;
              table link(X, Y);
              table reach(X, Y);
              r1 reach(X, Y) :- link(X, Y);
              r2 reach(X, Z) :- link(X, Y), reach(Y, Z);
            )")
                           .ok());
          });
      for (int i = 0; i < kChain; ++i) {
        BOOM_CHECK(
            engine.Enqueue("link", Tuple{Value(node(sh, i)), Value(node(sh, i + 1))}).ok());
      }
    }
    auto t0 = BenchClock::now();
    cluster.RunUntil(0);
    double ns = ElapsedNs(t0);
    size_t reach = 0;
    for (int sh = 0; sh < kScalingShards; ++sh) {
      reach += cluster.engine("shard" + std::to_string(sh))->catalog().Get("reach").size();
    }
    BOOM_CHECK(reach == static_cast<size_t>(kScalingShards) * kChain * (kChain + 1) / 2);
    return FromTotal(ns, static_cast<double>(reach));
  });
}

// churn_heavy: per shard, the 64-family churn workload; each virtual millisecond delivers
// a handful of keys to every shard, and the four resulting ticks run as one batch. Ticks
// are small, so this measures how much dispatch overhead the batcher adds to fine-grained
// work (the pessimistic end of the scaling table).
WorkloadResult RunScalingChurnHeavy(size_t threads) {
  constexpr int kFamilies = 64;
  constexpr int kTicks = 400;
  constexpr int kKeysPerTick = 4;
  std::string source = "program churn;\n";
  for (int f = 0; f < kFamilies; ++f) {
    std::string n = std::to_string(f);
    source += "table in" + n + "(K, V) keys(0);\n";
    source += "table out" + n + "(K, V) keys(0);\n";
    source += "c" + n + " out" + n + "(K, V) :- in" + n + "(K, V);\n";
  }
  return BestOf([&source, threads] {
    ClusterOptions copts;
    copts.worker_threads = threads;
    Cluster cluster(1, copts);
    for (int sh = 0; sh < kScalingShards; ++sh) {
      cluster.AddOverlogNode("shard" + std::to_string(sh), [&source](Engine& e) {
        BOOM_CHECK(e.InstallSource(source).ok());
      });
    }
    cluster.RunUntil(0);  // seed ticks (one empty batch)
    // Schedule every delivery up front; at each time t the delivery closures run first
    // (older seq), then the four coalesced shard ticks form one parallel batch.
    for (int t = 1; t <= kTicks; ++t) {
      std::string table = "in" + std::to_string((t - 1) % kFamilies);
      for (int sh = 0; sh < kScalingShards; ++sh) {
        std::string addr = "shard" + std::to_string(sh);
        std::string shard_tag = std::to_string(sh);  // shard-distinct payloads (see above)
        for (int k = 0; k < kKeysPerTick; ++k) {
          cluster.DeliverLocal(addr, table,
                               Tuple{Value("s" + shard_tag + "key" + std::to_string(k)),
                                     Value("s" + shard_tag + "v" + std::to_string(t) +
                                           "_" + std::to_string(k))},
                               static_cast<double>(t));
        }
      }
    }
    uint64_t before = 0;
    for (int sh = 0; sh < kScalingShards; ++sh) {
      before += cluster.engine("shard" + std::to_string(sh))->stats().derivations;
    }
    auto t0 = BenchClock::now();
    cluster.RunUntil(kTicks + 1);
    double ns = ElapsedNs(t0);
    uint64_t derivations = 0;
    for (int sh = 0; sh < kScalingShards; ++sh) {
      derivations += cluster.engine("shard" + std::to_string(sh))->stats().derivations;
    }
    derivations -= before;
    BOOM_CHECK(derivations ==
               static_cast<uint64_t>(kScalingShards) * kTicks * kKeysPerTick);
    return FromTotal(ns, static_cast<double>(derivations));
  });
}

// ---------------------------------------------------------------------------
// --json --optimizer: cost-based optimizer ablation (off vs on)
// ---------------------------------------------------------------------------
//
// Each workload runs twice — EngineOptions::enable_optimizer false then true — and the
// pair lands in BENCH_engine.json as {off_ns_per_op, on_ns_per_op, speedup}. The fixpoints
// are identical either way (enforced by the `optimizer` ctest label); only the plans and
// the index-maintenance strategy differ. check_bench.py gates both sides, so a regression
// on the greedy baseline cannot hide behind an optimizer win (or vice versa).

struct AblationResult {
  WorkloadResult off;
  WorkloadResult on;
};

// join_heavy: a selective three-way join where greedy order is maximally wrong. Body order
// puts the fat relation first (`big` has 100 rows per driver key), while `small` covers
// only one key in ten — so the greedy plan probes big and then pays 100 small-probes per
// event, almost all missing, where the cost-based plan (after the drift re-plan harvests
// live stats) probes small first and usually stops after one miss.
WorkloadResult RunOptimizerJoinHeavy(bool optimize) {
  constexpr int kKeys = 50;       // driver key space
  constexpr int kFanout = 100;    // big rows per key
  constexpr int kSmallEvery = 10; // small covers 1 key in 10
  constexpr int kTicks = 60;
  constexpr int kEventsPerTick = 40;
  return BestOf([optimize] {
    EngineOptions opts;
    opts.address = "n";
    opts.enable_optimizer = optimize;
    Engine engine(opts);
    BOOM_CHECK(engine
                   .InstallSource(R"(
      program sel;
      event probe(U);
      table big(U, N);
      table small(U, S) keys(0);
      table out(U, N, S);
      r1 out(U, N, S) :- probe(U), big(U, N), small(U, S), S == 1;
    )")
                   .ok());
    engine.Tick(0);
    for (int u = 0; u < kKeys; ++u) {
      for (int n = 0; n < kFanout; ++n) {
        BOOM_CHECK(engine.Enqueue("big", Tuple{Value(u), Value(n)}).ok());
      }
      if (u % kSmallEvery == 0) {
        BOOM_CHECK(engine.Enqueue("small", Tuple{Value(u), Value(1)}).ok());
      }
    }
    engine.Tick(1);  // applies the rows
    engine.Tick(2);  // optimizer: drift detected here, re-plan against live stats
    int64_t events = 0;
    double now = 3;
    auto t0 = BenchClock::now();
    for (int t = 0; t < kTicks; ++t) {
      for (int e = 0; e < kEventsPerTick; ++e) {
        BOOM_CHECK(engine.Enqueue("probe", Tuple{Value((t * 7 + e) % kKeys)}).ok());
        ++events;
      }
      engine.Tick(now);
      now += 1;
    }
    return FromTotal(ElapsedNs(t0), static_cast<double>(events));
  });
}

// namespace_op: BOOM-FS NameNode metadata churn over a populated namespace — rm, re-create,
// and ls against a directory holding kFiles entries. The win here is the index-maintenance
// strategy the optimizer enables: `rm1` probes file(_, Par, _, _) and `ls2` fans out over the
// same by-parent secondary index, while `rm2`'s delete invalidates it. Without incremental
// maintenance every rm forces the next probe to rebuild the whole index (O(namespace)); with
// it, the erase patches the affected bucket and probes stay O(1). The gap therefore scales
// with namespace size, which is exactly the behaviour a metadata server cares about.
WorkloadResult RunOptimizerNamespaceOp(bool optimize) {
  constexpr int kFiles = 1000;   // namespace size; also pushes both drift re-plans into warm-up
  constexpr int kWarmRounds = 40;
  constexpr int kRounds = 150;   // each round = rm + create + ls (3 ops)
  return BestOf([optimize] {
    EngineOptions opts;
    opts.address = "nn";
    opts.enable_optimizer = optimize;
    Engine engine(opts);
    BOOM_CHECK(engine.Install(BoomFsNnProgram()).ok());
    engine.Tick(0);
    int64_t id = 0;
    double now = 1;
    auto request = [&](const char* op, const std::string& path) {
      BOOM_CHECK(engine
                     .Enqueue("ns_request", Tuple{Value("nn"), Value(id++), Value("c"),
                                                  Value(op), Value(path), Value()})
                     .ok());
      engine.Tick(now);
      engine.Tick(now);  // @next state updates apply on the second tick
      now += 1;
    };
    request("mkdir", "/base");
    for (int i = 0; i < kFiles; ++i) {
      request("create", "/base/f" + std::to_string(i));
    }
    for (int r = 0; r < kWarmRounds; ++r) {  // warm the by-parent index + any re-plans
      const std::string victim = "/base/f" + std::to_string(r);
      request("rm", victim);
      request("create", victim);
      request("ls", "/base");
    }
    auto t0 = BenchClock::now();
    for (int r = 0; r < kRounds; ++r) {
      const std::string victim = "/base/f" + std::to_string(kWarmRounds + r);
      request("rm", victim);
      request("create", victim);
      request("ls", "/base");
    }
    return FromTotal(ElapsedNs(t0), 3.0 * kRounds);
  });
}

// churn_probe: the satellite fix in isolation. A keyed 10k-row table with a warm secondary
// index takes alternating replace / erase+reinsert churn, probing between mutations. The
// legacy path bumps mutation_epoch_ on every replace, so each probe pays a full O(table)
// index rebuild; incremental maintenance (what the engine enables with the optimizer)
// patches the affected buckets and the probe is O(1).
WorkloadResult RunOptimizerChurnProbe(bool incremental) {
  constexpr int64_t kRows = 10000;
  constexpr int kChurn = 2000;
  return BestOf([incremental] {
    TableDef def;
    def.name = "t";
    def.columns = {"K", "V"};
    def.key_columns = {0};
    Table table(def);
    table.set_incremental_index_maintenance(incremental);
    for (int64_t i = 0; i < kRows; ++i) {
      table.Insert(Tuple{Value(i), Value(i % 977)});
    }
    const std::vector<size_t> by_value = {1};
    BOOM_CHECK(!table.Probe(by_value, Tuple{Value(int64_t{13})}).empty());  // warm index
    auto t0 = BenchClock::now();
    for (int c = 0; c < kChurn; ++c) {
      int64_t k = (c * 37) % kRows;
      table.Insert(Tuple{Value(k), Value((k + c) % 977)});  // replace
      benchmark::DoNotOptimize(table.Probe(by_value, Tuple{Value((k + c) % 977)}));
    }
    return FromTotal(ElapsedNs(t0), kChurn);
  });
}

int JsonOptimizerMain() {
  struct Entry {
    const char* name;
    WorkloadResult (*run)(bool);
  };
  const Entry entries[] = {
      {"join_heavy", RunOptimizerJoinHeavy},
      {"namespace_op", RunOptimizerNamespaceOp},
      {"churn_probe", RunOptimizerChurnProbe},
  };
  std::printf("{\n  \"bench\": \"micro_engine\",\n  \"optimizer\": true,\n"
              "  \"workloads\": {\n");
  bool first = true;
  for (const Entry& e : entries) {
    AblationResult r;
    r.off = e.run(false);
    r.on = e.run(true);
    if (!first) {
      std::printf(",\n");
    }
    first = false;
    std::printf("    \"%s\": {\"off_ns_per_op\": %.1f, \"on_ns_per_op\": %.1f, "
                "\"speedup\": %.2f}",
                e.name, r.off.ns_per_op, r.on.ns_per_op,
                r.off.ns_per_op / r.on.ns_per_op);
  }
  std::printf("\n  }\n}\n");
  return 0;
}

int JsonScalingMain(size_t threads) {
  struct Entry {
    const char* name;
    WorkloadResult (*run)(size_t);
  };
  const Entry entries[] = {
      {"join_heavy", RunScalingJoinHeavy},
      {"churn_heavy", RunScalingChurnHeavy},
  };
  // Record the host's core count next to the numbers: on a single-core host the sweep
  // measures dispatch + atomic-refcount overhead under timeslicing, not speedup, and the
  // reader (and check_bench.py) must be able to tell which regime produced the block.
  std::printf(
      "{\n  \"bench\": \"micro_engine\",\n  \"threads\": %zu,\n  \"cores\": %u,\n"
      "  \"workloads\": {\n",
      threads, std::thread::hardware_concurrency());
  bool first = true;
  for (const Entry& e : entries) {
    WorkloadResult r = e.run(threads);
    if (!first) {
      std::printf(",\n");
    }
    first = false;
    std::printf("    \"%s\": {\"ns_per_op\": %.1f, \"tuples_per_sec\": %.0f}", e.name,
                r.ns_per_op, r.ops_per_sec);
  }
  std::printf("\n  }\n}\n");
  return 0;
}

int JsonMain() {
  struct Entry {
    const char* name;
    WorkloadResult (*run)();
  };
  const Entry entries[] = {
      {"tuple_hash_equality", RunTupleHashEquality},
      {"table_insert", RunTableInsert},
      {"index_probe", RunIndexProbe},
      {"join_heavy", RunJoinHeavy},
      {"churn_heavy", RunChurnHeavy},
      {"namespace_op", RunNamespaceOp},
  };
  std::printf("{\n  \"bench\": \"micro_engine\",\n  \"workloads\": {\n");
  bool first = true;
  for (const Entry& e : entries) {
    WorkloadResult r = e.run();
    if (!first) {
      std::printf(",\n");
    }
    first = false;
    std::printf("    \"%s\": {\"ns_per_op\": %.1f, \"tuples_per_sec\": %.0f}", e.name,
                r.ns_per_op, r.ops_per_sec);
  }
  std::printf("\n  }\n}\n");
  return 0;
}

}  // namespace
}  // namespace boom

int main(int argc, char** argv) {
  bool json = false;
  bool optimizer = false;
  size_t threads = 0;  // 0 = no --threads flag
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--optimizer") == 0) {
      optimizer = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      long v = std::strtol(argv[++i], nullptr, 10);
      threads = v < 1 ? 1 : static_cast<size_t>(v);
    }
  }
  if (json) {
    // --threads selects the parallel scaling workloads (cluster-sharded join/churn);
    // --optimizer the cost-based-optimizer off/on ablation pairs; plain --json is the
    // serial regression-gated set, byte-for-byte the historical path.
    if (optimizer) {
      return boom::JsonOptimizerMain();
    }
    return threads > 0 ? boom::JsonScalingMain(threads) : boom::JsonMain();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
